//! The excitation analyzer: how well does a training suite condition the
//! macro-model regression?
//!
//! The paper solves Eq. 5, `Ĉ = (XᵀX)⁻¹XᵀE`, so everything about
//! coefficient quality is a property of the design matrix `X` the suite
//! produces. The analyzer quantifies that property four ways:
//!
//! * **per-variable excitation** — how many cases give a column signal at
//!   all, and the column's norm. A variable excited by a single program is
//!   unidentifiable out-of-sample: hold that program out and the reduced
//!   `XᵀX` is singular (the ridge-fallback folds in `emx-validate`).
//! * **pairwise correlation** — two columns that move in lockstep let the
//!   least-squares solution trade one coefficient against the other
//!   freely; only their *sum* is pinned by the data.
//! * **variance inflation** — the multi-way generalization of pairwise
//!   correlation ([`emx_regress::diagnostics::variance_inflation`]).
//! * **condition number** — λ_max/λ_min of the column-normalized `XᵀX`,
//!   the single-number summary of how much the pseudo-inverse amplifies
//!   measurement noise into coefficient noise.
//!
//! The output is a ranked [`Gap`] list, which the directed case generator
//! (`emx_workloads::directed`) consumes to synthesize programs that close
//! the gaps.

use emx_regress::diagnostics::variance_inflation;
use emx_regress::{Dataset, Matrix, RegressError};

use crate::eigen::condition_number;

/// Acceptance thresholds for a training suite.
///
/// Defaults reflect what the emx suite needs for zero ridge-fallback
/// folds and stable coefficients, with margin on both sides: the
/// hand-written 40-program suite fails all four gates (condition number
/// 163, |r| up to 0.92, VIF up to 11, three sole-source variables) while
/// the directed-expanded 63-program suite passes all four (94 / 0.76 /
/// 7.6 / ≥ 3 cases per variable). See DESIGN.md §13 for the reasoning.
#[derive(Debug, Clone, PartialEq)]
pub struct Thresholds {
    /// Minimum cases that must excite each variable (a column with fewer
    /// nonzero entries is one sole-source program away from singular).
    pub min_nonzero_cases: usize,
    /// Maximum tolerated |Pearson r| between any two columns.
    pub max_pair_correlation: f64,
    /// Maximum tolerated condition number of the column-normalized Gram
    /// matrix.
    pub max_condition_number: f64,
    /// Maximum tolerated variance-inflation factor per variable.
    pub max_vif: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            min_nonzero_cases: 3,
            max_pair_correlation: 0.85,
            max_condition_number: 120.0,
            max_vif: 10.0,
        }
    }
}

/// Excitation statistics of one design-matrix column.
#[derive(Debug, Clone, PartialEq)]
pub struct VariableExcitation {
    /// Template-variable name.
    pub name: String,
    /// Cases in which the variable is nonzero.
    pub nonzero_cases: usize,
    /// Euclidean norm of the column.
    pub column_norm: f64,
    /// Variance-inflation factor (∞ = exactly collinear with the rest).
    pub vif: f64,
}

/// The |Pearson correlation| of one column pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PairCorrelation {
    /// First variable (earlier in template order).
    pub a: String,
    /// Second variable.
    pub b: String,
    /// Absolute centered Pearson correlation of the two columns.
    pub abs_r: f64,
}

/// Why a variable appears in the gap list.
#[derive(Debug, Clone, PartialEq)]
pub enum GapKind {
    /// Fewer than [`Thresholds::min_nonzero_cases`] cases excite it.
    UnderExcited {
        /// Cases that do excite it.
        nonzero_cases: usize,
    },
    /// Its column is too correlated with a partner column.
    Collinear {
        /// The partner variable it is entangled with.
        partner: String,
        /// Their |Pearson r|.
        abs_r: f64,
    },
    /// Its variance-inflation factor exceeds the threshold.
    Inflated {
        /// The VIF value.
        vif: f64,
    },
}

/// One suite gap: a variable the suite does not condition well, with the
/// dominant reason. Ranked most-severe first.
#[derive(Debug, Clone, PartialEq)]
pub struct Gap {
    /// The under-conditioned variable.
    pub variable: String,
    /// Why it is under-conditioned.
    pub kind: GapKind,
}

impl Gap {
    /// Stable machine-readable reason code (`under-excited`, `collinear`,
    /// `inflated`).
    pub fn reason(&self) -> &'static str {
        match self.kind {
            GapKind::UnderExcited { .. } => "under-excited",
            GapKind::Collinear { .. } => "collinear",
            GapKind::Inflated { .. } => "inflated",
        }
    }

    /// The partner variable to pair against when synthesizing a directed
    /// case for this gap, if the reason names one.
    pub fn partner(&self) -> Option<&str> {
        match &self.kind {
            GapKind::Collinear { partner, .. } => Some(partner),
            _ => None,
        }
    }
}

/// The full analyzer output for one suite.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageAnalysis {
    /// Training cases analyzed.
    pub cases: usize,
    /// Per-variable excitation, in template order.
    pub variables: Vec<VariableExcitation>,
    /// Column pairs with |r| ≥ 0.5, strongest first — the watch list.
    pub pairs: Vec<PairCorrelation>,
    /// Condition number of the column-normalized Gram matrix
    /// (∞ = numerically singular).
    pub condition_number: f64,
    /// Ranked conditioning gaps (empty for a suite that passes).
    pub gaps: Vec<Gap>,
    /// The thresholds the analysis was gated against.
    pub thresholds: Thresholds,
}

impl CoverageAnalysis {
    /// `true` when the suite meets every threshold.
    pub fn passes(&self) -> bool {
        self.gaps.is_empty() && self.condition_number <= self.thresholds.max_condition_number
    }

    /// Human-readable failure lines, empty when [`passes`](Self::passes).
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.condition_number > self.thresholds.max_condition_number {
            out.push(format!(
                "condition number {:.1} exceeds the {:.1} threshold",
                self.condition_number, self.thresholds.max_condition_number
            ));
        }
        for gap in &self.gaps {
            out.push(match &gap.kind {
                GapKind::UnderExcited { nonzero_cases } => format!(
                    "variable `{}` is excited by only {} case(s) (minimum {})",
                    gap.variable, nonzero_cases, self.thresholds.min_nonzero_cases
                ),
                GapKind::Collinear { partner, abs_r } => format!(
                    "variables `{}` and `{partner}` are collinear (|r| = {:.3} > {:.3})",
                    gap.variable, abs_r, self.thresholds.max_pair_correlation
                ),
                GapKind::Inflated { vif } => format!(
                    "variable `{}` has VIF {:.1} (maximum {:.1})",
                    gap.variable, vif, self.thresholds.max_vif
                ),
            });
        }
        out
    }
}

/// Pairs with |r| at or above this floor are recorded in
/// [`CoverageAnalysis::pairs`] even when they pass the gate, so the
/// report shows what the suite's margins are.
const PAIR_REPORT_FLOOR: f64 = 0.5;

fn pearson_abs(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        num += (x - ma) * (y - mb);
        da += (x - ma) * (x - ma);
        db += (y - mb) * (y - mb);
    }
    if da > 0.0 && db > 0.0 {
        (num / (da * db).sqrt()).abs()
    } else {
        0.0
    }
}

/// Analyzes a characterization dataset against `thresholds`.
///
/// # Errors
///
/// Propagates [`RegressError::Underdetermined`] when the suite has fewer
/// cases than template variables — no amount of thresholding makes such a
/// suite usable.
pub fn analyze(data: &Dataset, thresholds: &Thresholds) -> Result<CoverageAnalysis, RegressError> {
    let x = data.design_matrix();
    let names = data.names();
    let p = x.cols();

    let vif = variance_inflation(data)?;
    let mut variables = Vec::with_capacity(p);
    let mut norms = Vec::with_capacity(p);
    for (j, name) in names.iter().enumerate() {
        let col = x.col(j);
        let nonzero_cases = col.iter().filter(|v| **v != 0.0).count();
        let column_norm = col.iter().map(|v| v * v).sum::<f64>().sqrt();
        norms.push(column_norm);
        variables.push(VariableExcitation {
            name: name.clone(),
            nonzero_cases,
            column_norm,
            vif: vif[j],
        });
    }

    // Column-normalized Gram: conditioning net of the wild scale
    // differences between, say, cycle counts and cache-miss counts.
    // (Without normalization the condition number mostly measures units.)
    let normalized = Matrix::from_fn(x.rows(), p, |i, j| {
        if norms[j] > 0.0 {
            x[(i, j)] / norms[j]
        } else {
            0.0
        }
    });
    let condition = condition_number(&normalized.gram());

    let mut pairs = Vec::new();
    for i in 0..p {
        let ci = x.col(i);
        for j in (i + 1)..p {
            let abs_r = pearson_abs(&ci, &x.col(j));
            if abs_r >= PAIR_REPORT_FLOOR {
                pairs.push(PairCorrelation {
                    a: names[i].clone(),
                    b: names[j].clone(),
                    abs_r,
                });
            }
        }
    }
    pairs.sort_by(|l, r| {
        r.abs_r
            .partial_cmp(&l.abs_r)
            .expect("correlations are finite")
            .then_with(|| (&l.a, &l.b).cmp(&(&r.a, &r.b)))
    });

    // Gap list: under-excited variables first (fewest cases first), then
    // collinear pairs (strongest first, attributed to the later column —
    // the earlier one is usually the fundamental variable), then VIF
    // offenders not already covered.
    let mut gaps = Vec::new();
    let mut under: Vec<&VariableExcitation> = variables
        .iter()
        .filter(|v| v.nonzero_cases < thresholds.min_nonzero_cases)
        .collect();
    under.sort_by(|l, r| {
        l.nonzero_cases
            .cmp(&r.nonzero_cases)
            .then_with(|| l.name.cmp(&r.name))
    });
    for v in under {
        gaps.push(Gap {
            variable: v.name.clone(),
            kind: GapKind::UnderExcited {
                nonzero_cases: v.nonzero_cases,
            },
        });
    }
    for pair in &pairs {
        if pair.abs_r > thresholds.max_pair_correlation {
            gaps.push(Gap {
                variable: pair.b.clone(),
                kind: GapKind::Collinear {
                    partner: pair.a.clone(),
                    abs_r: pair.abs_r,
                },
            });
        }
    }
    for v in &variables {
        let already = gaps.iter().any(|g| g.variable == v.name);
        if !already && v.vif > thresholds.max_vif {
            gaps.push(Gap {
                variable: v.name.clone(),
                kind: GapKind::Inflated { vif: v.vif },
            });
        }
    }

    Ok(CoverageAnalysis {
        cases: x.rows(),
        variables,
        pairs,
        condition_number: condition,
        gaps,
        thresholds: thresholds.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A well-conditioned synthetic dataset: three near-orthogonal
    /// columns, each excited everywhere.
    fn good_dataset() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into(), "c".into()]);
        let rows: [[f64; 3]; 6] = [
            [5.0, 1.0, 2.0],
            [1.0, 6.0, 1.0],
            [2.0, 2.0, 7.0],
            [6.0, 1.0, 1.0],
            [1.0, 5.0, 3.0],
            [3.0, 1.0, 6.0],
        ];
        for (i, row) in rows.iter().enumerate() {
            let y = row.iter().sum();
            d.push_sample(format!("s{i}"), row, y).unwrap();
        }
        d
    }

    #[test]
    fn good_suite_passes_and_has_no_gaps() {
        let analysis = analyze(&good_dataset(), &Thresholds::default()).unwrap();
        assert!(analysis.passes(), "{:?}", analysis.failures());
        assert!(analysis.gaps.is_empty());
        assert_eq!(analysis.cases, 6);
        assert_eq!(analysis.variables.len(), 3);
        assert!(analysis.condition_number < 100.0);
    }

    #[test]
    fn sole_source_variable_is_an_under_excited_gap() {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        d.push_sample("s0", &[1.0, 0.0], 1.0).unwrap();
        d.push_sample("s1", &[2.0, 0.0], 2.0).unwrap();
        d.push_sample("s2", &[3.0, 0.0], 3.0).unwrap();
        d.push_sample("only", &[1.0, 4.0], 9.0).unwrap();
        let analysis = analyze(&d, &Thresholds::default()).unwrap();
        assert!(!analysis.passes());
        let gap = &analysis.gaps[0];
        assert_eq!(gap.variable, "b");
        assert_eq!(gap.reason(), "under-excited");
        assert!(matches!(
            gap.kind,
            GapKind::UnderExcited { nonzero_cases: 1 }
        ));
    }

    #[test]
    fn collinear_columns_are_flagged_with_their_partner() {
        let mut d = Dataset::new(vec!["a".into(), "twin".into(), "c".into()]);
        for i in 0..8 {
            let a = (i + 1) as f64;
            let c = ((i * 5 + 3) % 7) as f64 + 1.0;
            // `twin` tracks `a` with a faint wobble: |r| ≈ 1 but not an
            // exact copy, so VIF stays finite while correlation trips.
            let twin = 2.0 * a + if i % 2 == 0 { 0.01 } else { -0.01 };
            d.push_sample(format!("s{i}"), &[a, twin, c], a + twin + c)
                .unwrap();
        }
        let analysis = analyze(&d, &Thresholds::default()).unwrap();
        assert!(!analysis.passes());
        let gap = analysis
            .gaps
            .iter()
            .find(|g| g.reason() == "collinear")
            .expect("collinear gap");
        assert_eq!(gap.variable, "twin");
        assert_eq!(gap.partner(), Some("a"));
        // The strong pair leads the watch list.
        assert_eq!(analysis.pairs[0].a, "a");
        assert_eq!(analysis.pairs[0].b, "twin");
        assert!(analysis.pairs[0].abs_r > 0.99);
    }

    #[test]
    fn underdetermined_suite_is_an_error() {
        let mut d = Dataset::new(vec!["a".into(), "b".into(), "c".into()]);
        d.push_sample("s0", &[1.0, 2.0, 3.0], 6.0).unwrap();
        d.push_sample("s1", &[2.0, 1.0, 1.0], 4.0).unwrap();
        assert!(matches!(
            analyze(&d, &Thresholds::default()),
            Err(RegressError::Underdetermined { .. })
        ));
    }

    #[test]
    fn gap_ranking_puts_under_excited_before_collinear() {
        let mut d = Dataset::new(vec!["a".into(), "twin".into(), "rare".into()]);
        for i in 0..8 {
            let a = (i + 1) as f64;
            let twin = 2.0 * a + if i % 2 == 0 { 0.01 } else { -0.01 };
            let rare = if i == 3 { 5.0 } else { 0.0 };
            d.push_sample(format!("s{i}"), &[a, twin, rare], a + twin + rare)
                .unwrap();
        }
        let analysis = analyze(&d, &Thresholds::default()).unwrap();
        assert!(analysis.gaps.len() >= 2, "{:?}", analysis.gaps);
        assert_eq!(analysis.gaps[0].variable, "rare");
        assert_eq!(analysis.gaps[0].reason(), "under-excited");
    }
}
