//! End-to-end behaviour of the in-process service: response
//! determinism against the one-shot estimation path, typed
//! application-level errors, the DSE and characterize endpoints, cache
//! persistence across graceful restarts, and a loadgen round trip.

use std::sync::Arc;

use emx_core::EnergyMacroModel;
use emx_obs::json::Value;
use emx_serve::{
    request_once, wire, CharacterizeMode, HttpClient, LoadConfig, ServeConfig, ServeSummary, Server,
};
use emx_sim::ProcConfig;

fn test_model() -> EnergyMacroModel {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../model.txt"))
        .expect("committed model.txt at the repo root");
    EnergyMacroModel::from_text(&text).expect("parse committed model")
}

/// Unique temp path that cleans up after itself.
struct Scratch(String);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        Scratch(format!(
            "{}/emx-serve-test-{}-{tag}.json",
            std::env::temp_dir().display(),
            std::process::id()
        ))
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        for suffix in ["", ".tmp", ".corrupt"] {
            let _ = std::fs::remove_file(format!("{}{suffix}", self.0));
        }
    }
}

fn start_with(config: ServeConfig) -> (String, std::thread::JoinHandle<ServeSummary>) {
    let server = Server::bind(test_model(), config).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("clean shutdown"));
    (addr, handle)
}

fn start() -> (String, std::thread::JoinHandle<ServeSummary>) {
    start_with(ServeConfig {
        characterize: CharacterizeMode::Calibration,
        ..ServeConfig::default()
    })
}

fn stop(addr: &str, handle: std::thread::JoinHandle<ServeSummary>) -> ServeSummary {
    let response = request_once(addr, "POST", "/v1/shutdown", None).expect("shutdown request");
    assert_eq!(response.status, 200);
    handle.join().expect("server thread")
}

fn estimate_bytes(client: &mut HttpClient, body: &Value) -> (u16, Vec<u8>) {
    let text = body.to_string();
    let response = client
        .request("POST", "/v1/estimate", Some(text.as_bytes()))
        .expect("estimate request");
    (response.status, response.body)
}

#[test]
fn estimate_responses_are_byte_identical_to_the_one_shot_path() {
    let (addr, handle) = start();
    let mut client = HttpClient::new(&addr);

    let body = wire::estimate_request("gcd");
    let (status, cold) = estimate_bytes(&mut client, &body);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&cold));
    let (status, warm) = estimate_bytes(&mut client, &body);
    assert_eq!(status, 200);
    assert_eq!(
        cold, warm,
        "a cache-warm response must be byte-identical to the cold one"
    );

    // The exact bytes the one-shot path produces for the same inputs,
    // through the same deterministic JSON writer.
    let model = Arc::new(test_model());
    let apps = emx_workloads::apps::all();
    let gcd = apps.iter().find(|w| w.name() == "gcd").unwrap();
    let direct = model
        .estimate(gcd.program(), gcd.ext(), ProcConfig::default())
        .unwrap();
    let expected = wire::ok_envelope(
        "estimate",
        wire::estimate_result(
            "gcd",
            direct.energy.as_picojoules(),
            direct.stats.total_cycles,
        ),
    )
    .to_string();
    assert_eq!(
        String::from_utf8_lossy(&cold),
        expected,
        "service response must match the one-shot estimate byte for byte"
    );

    stop(&addr, handle);
}

#[test]
fn inline_programs_estimate_and_bad_inputs_get_typed_errors() {
    let (addr, handle) = start();
    let mut client = HttpClient::new(&addr);

    let mut body = Value::object();
    body.set("schema", "emx.serve-request/1");
    body.set("kind", "estimate");
    body.set(
        "program",
        ".text\nmovi a2, 3\nloop:\naddi a2, a2, -1\nbnez a2, loop\nhalt",
    );
    let (status, doc) = client.post_json("/v1/estimate", &body).unwrap();
    assert_eq!(status, 200, "{doc}");
    let result = doc.get("result").expect("result document");
    assert_eq!(
        result.get("workload").and_then(Value::as_str),
        Some("inline")
    );
    assert!(result.get("energy_pj").and_then(Value::as_f64).unwrap() > 0.0);
    assert!(result.get("cycles").and_then(Value::as_u64).unwrap() > 0);

    let error_code = |doc: &Value| {
        doc.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str)
            .map(str::to_owned)
            .unwrap_or_else(|| panic!("no error code in {doc}"))
    };

    // Bad assembly: a typed input error, not a dead worker.
    let mut bad = Value::object();
    bad.set("schema", "emx.serve-request/1");
    bad.set("kind", "estimate");
    bad.set("program", "not an instruction at all");
    let (status, doc) = client.post_json("/v1/estimate", &bad).unwrap();
    assert_eq!(status, 422, "{doc}");
    assert_eq!(error_code(&doc), "parse.asm");

    let (status, doc) = client
        .post_json("/v1/estimate", &wire::estimate_request("no_such_app"))
        .unwrap();
    assert_eq!(status, 422);
    assert_eq!(error_code(&doc), "serve.unknown_app");

    // An estimate body on the DSE endpoint: kind mismatch.
    let (status, doc) = client
        .post_json("/v1/dse", &wire::estimate_request("gcd"))
        .unwrap();
    assert_eq!(status, 400);
    assert_eq!(error_code(&doc), "serve.kind_mismatch");

    // The server survived all of that.
    let (status, doc) = client.post_json("/v1/estimate", &body).unwrap();
    assert_eq!(status, 200, "{doc}");

    stop(&addr, handle);
}

#[test]
fn dse_endpoint_runs_a_budgeted_search() {
    let (addr, handle) = start();
    let mut client = HttpClient::new(&addr);

    // Budget 0: only the zero-area base candidate survives enumeration,
    // which keeps this an endpoint test rather than a full search.
    let mut body = Value::object();
    body.set("schema", "emx.serve-request/1");
    body.set("kind", "dse");
    body.set("workload", "reed-solomon");
    body.set("budget", 0.0);
    let (status, doc) = client.post_json("/v1/dse", &body).unwrap();
    assert_eq!(status, 200, "{doc}");
    assert_eq!(doc.get("kind").and_then(Value::as_str), Some("dse"));
    let result = doc.get("result").expect("result document");
    assert_eq!(
        result.get("schema").and_then(Value::as_str),
        Some("emx.dse-report/1")
    );

    let mut unknown = Value::object();
    unknown.set("schema", "emx.serve-request/1");
    unknown.set("kind", "dse");
    unknown.set("workload", "no-such-space");
    let (status, doc) = client.post_json("/v1/dse", &unknown).unwrap();
    assert_eq!(status, 422);
    assert_eq!(
        doc.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str),
        Some("serve.unknown_space")
    );

    stop(&addr, handle);
}

#[test]
fn characterize_report_endpoint_answers_and_memoizes() {
    let (addr, handle) = start();
    let mut client = HttpClient::new(&addr);

    // Calibration mode runs the small single-event suite, which is
    // deliberately too small to determine all coefficients — the
    // endpoint must surface that as a typed error, not a hang or crash.
    // (Full mode returns the real report; that path is exercised by the
    // one-shot emx-characterize tests.)
    let first = client
        .request("GET", "/v1/characterize-report", None)
        .unwrap();
    let second = client
        .request("GET", "/v1/characterize-report", None)
        .unwrap();
    assert_eq!(first.status, second.status);
    assert_eq!(
        first.body, second.body,
        "the memoized report must not change between requests"
    );
    let doc = first.json().unwrap();
    match first.status {
        200 => assert_eq!(
            doc.get("result")
                .and_then(|r| r.get("schema"))
                .and_then(Value::as_str),
            Some("emx.characterize-report/1"),
            "{doc}"
        ),
        500 => assert!(
            doc.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Value::as_str)
                .is_some(),
            "{doc}"
        ),
        other => panic!("unexpected status {other}: {doc}"),
    }

    stop(&addr, handle);
}

#[test]
fn stats_endpoint_reports_counters_and_histograms() {
    let (addr, handle) = start();
    let mut client = HttpClient::new(&addr);

    let (status, _) = client
        .post_json("/v1/estimate", &wire::estimate_request("gcd"))
        .unwrap();
    assert_eq!(status, 200);

    let response = client.request("GET", "/v1/stats", None).unwrap();
    assert_eq!(response.status, 200);
    let doc = response.json().unwrap();
    let result = doc.get("result").expect("result document");
    let counters = result.get("counters").expect("counters object");
    assert!(
        counters
            .get("serve.requests")
            .and_then(Value::as_f64)
            .unwrap()
            >= 1.0
    );
    assert!(
        counters
            .get("serve.batches")
            .and_then(Value::as_f64)
            .unwrap()
            >= 1.0
    );
    let latency = result
        .get("histograms")
        .and_then(|h| h.get("serve.latency_us"))
        .expect("latency histogram");
    assert!(latency.get("count").and_then(Value::as_u64).unwrap() >= 1);
    assert!(result.get("cache_entries").and_then(Value::as_u64).unwrap() >= 1);

    stop(&addr, handle);
}

#[test]
fn cache_persists_across_graceful_restart_with_identical_answers() {
    let scratch = Scratch::new("restart-cache");
    let config = || ServeConfig {
        characterize: CharacterizeMode::Calibration,
        cache_path: Some(scratch.0.clone()),
        ..ServeConfig::default()
    };

    let (addr, handle) = start_with(config());
    let mut client = HttpClient::new(&addr);
    let body = wire::estimate_request("ins_sort");
    let (status, first) = estimate_bytes(&mut client, &body);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&first));
    drop(client);
    let summary = stop(&addr, handle);
    assert!(summary.cache_entries >= 1);
    assert!(
        std::path::Path::new(&scratch.0).exists(),
        "graceful shutdown must leave the persisted cache behind"
    );

    // Fresh process-equivalent: a new server over the same cache file
    // answers from the warm cache, byte-identically.
    let (addr, handle) = start_with(config());
    let mut client = HttpClient::new(&addr);
    let (status, warm) = estimate_bytes(&mut client, &body);
    assert_eq!(status, 200);
    assert_eq!(
        first, warm,
        "a restarted server must answer from the persisted cache with identical bytes"
    );
    stop(&addr, handle);
}

#[test]
fn idle_keepalive_connection_does_not_add_poll_latency_to_others() {
    // Regression test for the requeued-idle-connection tail: with one
    // worker, an idle keep-alive client used to pin the worker in a
    // fixed 250 ms read, so every request on another connection could
    // queue for up to 250 ms behind it. The worker must instead notice
    // queued work within one short poll window (~5 ms).
    let (addr, handle) = start_with(ServeConfig {
        characterize: CharacterizeMode::Calibration,
        workers: 1,
        ..ServeConfig::default()
    });

    // The idle client: connects, proves the server is warm with one
    // request, then goes quiet while holding its connection open.
    let mut idle = HttpClient::new(&addr);
    let response = idle.request("GET", "/healthz", None).expect("warm-up");
    assert_eq!(response.status, 200);

    // The active client: sequential requests on a second connection,
    // each of which contends with the idle connection for the worker.
    let mut active = HttpClient::new(&addr);
    let mut worst = std::time::Duration::ZERO;
    for _ in 0..30 {
        let started = std::time::Instant::now();
        let response = active.request("GET", "/healthz", None).expect("request");
        assert_eq!(response.status, 200);
        worst = worst.max(started.elapsed());
    }

    // Each request needs at most a couple of poll windows (one for the
    // worker to abandon the idle connection, one to pick this one up)
    // plus routing time. 100 ms leaves ample scheduler headroom on a
    // loaded machine while still failing clearly against a 250 ms poll.
    assert!(
        worst < std::time::Duration::from_millis(100),
        "worst request latency {worst:?} behind an idle keep-alive \
         connection; the worker is sleeping through queued work"
    );

    drop(idle);
    stop(&addr, handle);
}

#[test]
fn load_generator_round_trip_is_error_free() {
    let (addr, handle) = start();

    let report = emx_serve::run_load(&LoadConfig {
        addr: addr.clone(),
        concurrency: 3,
        duration_ms: 300,
        apps: vec!["gcd".to_owned(), "ins_sort".to_owned()],
        shutdown_after: true,
    })
    .expect("load run");
    emx_serve::loadgen::validate_report(&report).expect("well-formed report");
    assert_eq!(
        report.get("errors").and_then(Value::as_u64),
        Some(0),
        "{report}"
    );
    assert!(report.get("requests").and_then(Value::as_u64).unwrap() > 0);
    assert!(
        report
            .get("latency_us")
            .unwrap()
            .get("p99")
            .and_then(Value::as_u64)
            >= report
                .get("latency_us")
                .unwrap()
                .get("p50")
                .and_then(Value::as_u64)
    );

    // --shutdown drained the server; run() returns without another POST.
    let summary = handle.join().expect("server thread");
    assert!(summary.requests > 0);
    assert!(summary.batches >= 1);
}
