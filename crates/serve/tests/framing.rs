//! Request-framing robustness: every malformed input a client can put
//! on the wire must come back as a typed error document with a stable
//! machine code — never a silently dropped connection — and framing
//! errors on one request must not take down well-formed traffic.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};

use emx_obs::json::Value;
use emx_serve::{request_once, CharacterizeMode, HttpClient, ServeConfig, ServeSummary, Server};

fn test_model() -> emx_core::EnergyMacroModel {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../model.txt"))
        .expect("committed model.txt at the repo root");
    emx_core::EnergyMacroModel::from_text(&text).expect("parse committed model")
}

fn start() -> (String, std::thread::JoinHandle<ServeSummary>) {
    let config = ServeConfig {
        characterize: CharacterizeMode::Calibration,
        ..ServeConfig::default()
    };
    let server = Server::bind(test_model(), config).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("clean shutdown"));
    (addr, handle)
}

fn stop(addr: &str, handle: std::thread::JoinHandle<ServeSummary>) -> ServeSummary {
    let response = request_once(addr, "POST", "/v1/shutdown", None).expect("shutdown request");
    assert_eq!(response.status, 200);
    handle.join().expect("server thread")
}

/// Sends raw bytes, half-closes the write side, reads everything the
/// server answers, and parses it as one HTTP response.
fn raw(addr: &str, bytes: &[u8]) -> (u16, Value) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(bytes).expect("send");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    parse_response(&text)
}

fn parse_response(text: &str) -> (u16, Value) {
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status in response: {text:?}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or_else(|| panic!("no body in response: {text:?}"));
    let doc = Value::parse(body).unwrap_or_else(|e| panic!("body is not JSON ({e}): {body:?}"));
    (status, doc)
}

fn error_code(doc: &Value) -> String {
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("emx.serve-response/1"),
        "even error responses carry the response schema: {doc}"
    );
    assert_eq!(doc.get("status").and_then(Value::as_str), Some("error"));
    doc.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("no error code in {doc}"))
        .to_owned()
}

#[test]
fn malformed_framing_gets_typed_errors_not_dropped_connections() {
    let (addr, handle) = start();

    let mut huge_head = b"GET /healthz HTTP/1.1\r\nx: ".to_vec();
    huge_head.resize(huge_head.len() + 20 * 1024, b'a');
    huge_head.extend_from_slice(b"\r\n\r\n");

    let cases: &[(&[u8], u16, &str)] = &[
        (b"TOTAL GARBAGE\r\n\r\n", 400, "serve.bad_request_line"),
        (
            b"GET /healthz SMTP/3\r\n\r\n",
            400,
            "serve.bad_request_line",
        ),
        (
            b"GET /healthz HTTP/1.1\r\nno-colon-here\r\n\r\n",
            400,
            "serve.bad_header",
        ),
        (
            b"POST /v1/estimate HTTP/1.1\r\n\r\n",
            411,
            "serve.missing_length",
        ),
        (
            b"POST /v1/estimate HTTP/1.1\r\ncontent-length: nope\r\n\r\n",
            400,
            "serve.bad_length",
        ),
        // Declared larger than the 1 MiB default limit: rejected before
        // any body byte is buffered.
        (
            b"POST /v1/estimate HTTP/1.1\r\ncontent-length: 2097152\r\n\r\n",
            413,
            "serve.body_too_large",
        ),
        // Half-closed mid-body: the peer promised 100 bytes and sent 5.
        (
            b"POST /v1/estimate HTTP/1.1\r\ncontent-length: 100\r\n\r\nshort",
            400,
            "serve.truncated_request",
        ),
        (&huge_head, 431, "serve.head_too_large"),
    ];
    for (bytes, status, code) in cases {
        let (got_status, doc) = raw(&addr, bytes);
        assert_eq!(
            got_status,
            *status,
            "{}",
            String::from_utf8_lossy(&bytes[..bytes.len().min(60)])
        );
        assert_eq!(
            error_code(&doc),
            *code,
            "{}",
            String::from_utf8_lossy(&bytes[..bytes.len().min(60)])
        );
    }

    let summary = stop(&addr, handle);
    assert!(summary.errors >= cases.len() as u64);
}

#[test]
fn bad_bodies_answer_typed_errors_and_keep_the_connection() {
    let (addr, handle) = start();
    let mut client = HttpClient::new(&addr);

    // Truncated JSON in a correctly framed request: the HTTP layer is
    // fine, the body is not. The connection must survive for the next
    // request.
    let cases: &[(&[u8], &str)] = &[
        (br#"{"schema":"#, "serve.bad_json"),
        (b"\xff\xfe bad utf8", "serve.bad_utf8"),
        (
            br#"{"schema":"emx.serve-request/7","kind":"estimate","app":"gcd"}"#,
            "serve.unknown_schema",
        ),
        (
            br#"{"kind":"estimate","app":"gcd"}"#,
            "serve.missing_schema",
        ),
        (
            br#"{"schema":"emx.serve-request/1","kind":"transmogrify"}"#,
            "serve.unknown_kind",
        ),
    ];
    for (body, code) in cases {
        let response = client
            .request("POST", "/v1/estimate", Some(body))
            .expect("typed response, not a dropped connection");
        assert_eq!(response.status, 400);
        assert!(
            !response.close,
            "a body-level error must not close the connection"
        );
        assert_eq!(error_code(&response.json().unwrap()), *code);
    }

    // The same keep-alive connection still serves good requests.
    let response = client.request("GET", "/healthz", None).expect("healthz");
    assert_eq!(response.status, 200);
    let doc = response.json().unwrap();
    assert_eq!(doc.get("status").and_then(Value::as_str), Some("ok"));

    stop(&addr, handle);
}

#[test]
fn unknown_routes_and_methods_are_typed() {
    let (addr, handle) = start();

    let response = request_once(&addr, "GET", "/no/such/endpoint", None).unwrap();
    assert_eq!(response.status, 404);
    assert_eq!(error_code(&response.json().unwrap()), "serve.not_found");

    let response = request_once(&addr, "DELETE", "/v1/estimate", None).unwrap();
    assert_eq!(response.status, 405);
    assert_eq!(
        error_code(&response.json().unwrap()),
        "serve.method_not_allowed"
    );

    stop(&addr, handle);
}
