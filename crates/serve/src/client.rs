//! A minimal blocking HTTP/1.1 client for the service wire format —
//! what `emx-load`, the CI smoke step, and the integration tests speak.
//!
//! Keep-alive by default: one [`HttpClient`] holds one connection and
//! reconnects transparently if the server closed it (e.g. after a `503`
//! or during shutdown).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use emx_obs::json::Value;

/// One parsed response: status code and body bytes.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// The HTTP status code.
    pub status: u16,
    /// The response body.
    pub body: Vec<u8>,
    /// Whether the server asked to close the connection.
    pub close: bool,
}

impl HttpResponse {
    /// The body parsed as JSON.
    ///
    /// # Errors
    ///
    /// An `InvalidData` error when the body is not valid JSON.
    pub fn json(&self) -> io::Result<Value> {
        let text = std::str::from_utf8(&self.body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Value::parse(text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// A keep-alive connection to one server address.
pub struct HttpClient {
    addr: String,
    reader: Option<BufReader<TcpStream>>,
    read_timeout: Duration,
}

impl HttpClient {
    /// Creates a client for `addr` (`host:port`). The connection is
    /// opened lazily on the first request.
    pub fn new(addr: impl Into<String>) -> HttpClient {
        HttpClient {
            addr: addr.into(),
            reader: None,
            read_timeout: Duration::from_secs(120),
        }
    }

    fn connection(&mut self) -> io::Result<&mut BufReader<TcpStream>> {
        if self.reader.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_read_timeout(Some(self.read_timeout))?;
            stream.set_nodelay(true)?;
            self.reader = Some(BufReader::new(stream));
        }
        Ok(self.reader.as_mut().expect("connection just established"))
    }

    /// Sends one request and reads the response.
    ///
    /// # Errors
    ///
    /// Socket errors and malformed responses (`InvalidData`).
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> io::Result<HttpResponse> {
        let outcome = self.request_once(method, path, body);
        if outcome.is_err() {
            // One transparent retry on a fresh connection: the server
            // may have closed an idle keep-alive socket under us.
            self.reader = None;
            return self.request_once(method, path, body);
        }
        outcome
    }

    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> io::Result<HttpResponse> {
        let reader = self.connection()?;
        let stream = reader.get_mut();
        let body = body.unwrap_or_default();
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nhost: emx\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )?;
        stream.write_all(body)?;
        stream.flush()?;

        let response = read_response(reader);
        if response.as_ref().map(|r| r.close).unwrap_or(true) {
            self.reader = None;
        }
        response
    }

    /// POSTs a JSON document and parses the JSON response.
    ///
    /// # Errors
    ///
    /// As [`HttpClient::request`] plus JSON parse failures.
    pub fn post_json(&mut self, path: &str, doc: &Value) -> io::Result<(u16, Value)> {
        let body = doc.to_string();
        let response = self.request("POST", path, Some(body.as_bytes()))?;
        let parsed = response.json()?;
        Ok((response.status, parsed))
    }
}

fn invalid(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

fn read_response(reader: &mut BufReader<TcpStream>) -> io::Result<HttpResponse> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before a response",
        ));
    }
    let mut parts = status_line.split_whitespace();
    let (version, status) = (parts.next(), parts.next());
    if !version.is_some_and(|v| v.starts_with("HTTP/1.")) {
        return Err(invalid(format!("bad status line `{}`", status_line.trim())));
    }
    let status: u16 = status
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid(format!("bad status in `{}`", status_line.trim())))?;

    let mut length: Option<usize> = None;
    let mut close = false;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed inside headers",
            ));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(invalid(format!("bad header `{line}`")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            length = Some(
                value
                    .parse()
                    .map_err(|_| invalid(format!("bad content-length `{value}`")))?,
            );
        } else if name == "connection" && value.eq_ignore_ascii_case("close") {
            close = true;
        }
    }
    let length = length.ok_or_else(|| invalid("response without content-length"))?;
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body)?;
    Ok(HttpResponse {
        status,
        body,
        close,
    })
}

/// One-shot convenience: connect, send, read, disconnect.
///
/// # Errors
///
/// As [`HttpClient::request`].
pub fn request_once(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> io::Result<HttpResponse> {
    HttpClient::new(addr).request(method, path, body)
}
