//! Adaptive micro-batching of concurrent estimate requests.
//!
//! All estimate traffic funnels through one batching thread. It blocks
//! for the first pending request, then keeps a short *coalescing
//! window* open: every further request arriving inside the window joins
//! the same [`emx_dse::evaluate_batch`] call, sharing the batch
//! engine's worker pool and the content-addressed cache. The window
//! adapts to load — it doubles (up to a cap) whenever a batch actually
//! coalesced more than one request, and halves back down when traffic
//! is solo, so an idle service answers at minimum latency while a
//! loaded one amortizes evaluation across requests.
//!
//! Determinism is inherited from the batch engine: results are a pure
//! function of (model, program, extension, config), independent of
//! batch composition and cache warmth, so micro-batching never changes
//! a response's bytes.

use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use emx_core::EnergyMacroModel;
use emx_dse::{evaluate_batch, EnumeratedCandidate, SharedEstimationCache};
use emx_obs::Collector;
use emx_sim::ProcConfig;

use crate::wire::WireError;

/// Tuning for the coalescing window and the evaluation pool.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Most requests coalesced into one evaluation call.
    pub max_batch: usize,
    /// Smallest (and initial) coalescing window, microseconds.
    pub min_window_us: u64,
    /// Largest coalescing window, microseconds.
    pub max_window_us: u64,
    /// Worker threads inside each `evaluate_batch` call (0 = one per
    /// core).
    pub jobs: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 16,
            min_window_us: 200,
            max_window_us: 4000,
            jobs: 0,
        }
    }
}

/// One priced candidate: exactly the fields the estimation cache
/// persists, so warm and cold answers cannot differ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatePoint {
    /// Estimated energy, picojoules.
    pub energy_pj: f64,
    /// Simulated cycles to halt.
    pub cycles: u64,
}

struct Job {
    candidate: EnumeratedCandidate,
    reply: mpsc::Sender<Result<EstimatePoint, WireError>>,
}

/// Handle to the batching thread. Dropping it (or calling
/// [`Batcher::drain`]) stops the thread after it finishes every pending
/// job — in-flight requests are never abandoned.
pub struct Batcher {
    tx: Option<mpsc::Sender<Job>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

fn lock_recovering<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Batcher {
    /// Spawns the batching thread.
    ///
    /// `cache_path`, when set, is flushed (atomically) after every batch
    /// so a crash loses at most the most recent batch — the recovery
    /// path (`load_or_recover`) then reads a consistent file.
    /// Observability flows through `obs`: the thread forks a child
    /// collector per batch and absorbs it back, so `serve.batches`,
    /// `serve.batch_size` and the engine's cache counters are visible
    /// live from the stats endpoint.
    pub fn spawn(
        model: Arc<EnergyMacroModel>,
        cache: SharedEstimationCache,
        cache_path: Option<String>,
        config: BatchConfig,
        obs: Arc<Mutex<Collector>>,
    ) -> Batcher {
        let (tx, rx) = mpsc::channel::<Job>();
        let thread = std::thread::Builder::new()
            .name("emx-serve-batch".to_owned())
            .spawn(move || batch_loop(&rx, &model, &cache, cache_path.as_deref(), &config, &obs))
            .expect("spawning the batch thread");
        Batcher {
            tx: Some(tx),
            thread: Some(thread),
        }
    }

    /// Submits one candidate; the result arrives on the returned
    /// receiver once its batch completes.
    pub fn submit(
        &self,
        candidate: EnumeratedCandidate,
    ) -> mpsc::Receiver<Result<EstimatePoint, WireError>> {
        let (reply, rx) = mpsc::channel();
        if let Some(tx) = &self.tx {
            // A send failure means the batch thread is gone; the caller
            // sees it as a disconnected receiver and reports a typed
            // internal error.
            let _ = tx.send(Job { candidate, reply });
        }
        rx
    }

    /// Stops the batching thread after it drains every pending job.
    pub fn drain(&mut self) {
        self.tx = None;
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.drain();
    }
}

fn batch_loop(
    rx: &mpsc::Receiver<Job>,
    model: &EnergyMacroModel,
    cache: &SharedEstimationCache,
    cache_path: Option<&str>,
    config: &BatchConfig,
    obs: &Mutex<Collector>,
) {
    let proc = ProcConfig::default();
    let mut window_us = config.min_window_us.max(1);
    loop {
        // Block for the first job; a disconnect here means shutdown with
        // nothing pending.
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        let mut jobs = vec![first];
        while jobs.len() < config.max_batch.max(1) {
            match rx.recv_timeout(Duration::from_micros(window_us)) {
                Ok(job) => jobs.push(job),
                Err(_) => break,
            }
        }

        let candidates: Vec<EnumeratedCandidate> =
            jobs.iter().map(|j| j.candidate.clone()).collect();
        let mut local = lock_recovering(obs).fork();
        let span = local.begin(format!("serve.batch:{}", jobs.len()));
        let result = {
            let mut guard = cache.lock();
            evaluate_batch(
                model,
                &candidates,
                &proc,
                config.jobs,
                &mut guard,
                &mut local,
            )
        };
        local.end(span);
        local.add("serve.batches", 1.0);
        local.record("serve.batch_size", jobs.len() as u64);
        if let Some(path) = cache_path {
            if cache.save(path).is_err() {
                local.add("serve.cache_flush_errors", 1.0);
            }
        }
        lock_recovering(obs).absorb(local);

        let coalesced = jobs.len() > 1;
        for (i, job) in jobs.into_iter().enumerate() {
            let outcome = match &result.points[i] {
                Some(point) => Ok(EstimatePoint {
                    energy_pj: point.energy.as_picojoules(),
                    cycles: point.cycles,
                }),
                None => {
                    let failure = result.failed.iter().find(|f| f.name == candidates[i].name);
                    Err(match failure {
                        Some(f) => WireError::new(
                            if f.error.code() == "worker.panicked" {
                                500
                            } else {
                                422
                            },
                            "serve.estimate_failed",
                            format!("{} [{}]", f.error, f.error.code()),
                        ),
                        None => WireError::new(
                            500,
                            "serve.estimate_failed",
                            "candidate lost without a failure record",
                        ),
                    })
                }
            };
            // The requester may have timed out and gone away; that loses
            // only its own reply.
            let _ = job.reply.send(outcome);
        }

        // Adapt the window: pay latency for coalescing only while it
        // actually coalesces.
        window_us = if coalesced {
            (window_us * 2).min(config.max_window_us.max(1))
        } else {
            (window_us / 2).max(config.min_window_us.max(1))
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emx_workloads::Workload;

    fn test_model() -> EnergyMacroModel {
        let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../model.txt"))
            .expect("committed model.txt at the repo root");
        EnergyMacroModel::from_text(&text).expect("parse committed model")
    }

    fn candidate(name: &str, workload: Workload) -> EnumeratedCandidate {
        EnumeratedCandidate {
            name: name.to_owned(),
            mask: 0,
            options: vec![],
            area: 0.0,
            workload,
        }
    }

    #[test]
    fn batched_results_match_and_drain_on_drop() {
        let model = Arc::new(test_model());
        let cache = SharedEstimationCache::default();
        let obs = Arc::new(Mutex::new(Collector::new()));
        let mut batcher = Batcher::spawn(
            Arc::clone(&model),
            cache.clone(),
            None,
            BatchConfig::default(),
            Arc::clone(&obs),
        );

        let apps = emx_workloads::apps::all();
        let gcd = apps.iter().find(|w| w.name() == "gcd").unwrap().clone();
        let rx_a = batcher.submit(candidate("gcd", gcd.clone()));
        let rx_b = batcher.submit(candidate("gcd", gcd.clone()));
        let a = rx_a.recv().unwrap().unwrap();
        let b = rx_b.recv().unwrap().unwrap();
        assert_eq!(a, b, "same candidate must price identically");

        // Direct one-shot path for the same inputs.
        let direct = model
            .estimate(gcd.program(), gcd.ext(), ProcConfig::default())
            .unwrap();
        assert_eq!(a.energy_pj, direct.energy.as_picojoules());
        assert_eq!(a.cycles, direct.stats.total_cycles);

        batcher.drain();
        assert!(!cache.is_empty(), "evaluations must land in the cache");
        let obs = lock_recovering(&obs);
        assert!(obs.counter("serve.batches") >= 1.0);
    }
}
