//! The load generator behind `emx-load`: concurrent keep-alive workers
//! hammering `/v1/estimate`, merged into one `emx.load-report/1`
//! summary (latency percentiles, sustained RPS, error counts) so
//! service performance is measurable PR-over-PR like the bench
//! snapshots.

use std::time::{Duration, Instant};

use emx_core::EmxError;
use emx_obs::json::Value;
use emx_obs::Histogram;

use crate::client::HttpClient;
use crate::wire;

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Concurrent client connections.
    pub concurrency: usize,
    /// How long to keep sending, in milliseconds. `0` sends nothing
    /// (useful with [`LoadConfig::shutdown_after`] as a pure shutdown
    /// client).
    pub duration_ms: u64,
    /// Application names to cycle through.
    pub apps: Vec<String>,
    /// POST `/v1/shutdown` once the burst completes.
    pub shutdown_after: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: String::new(),
            concurrency: 4,
            duration_ms: 1000,
            apps: vec!["gcd".to_owned(), "ins_sort".to_owned()],
            shutdown_after: false,
        }
    }
}

/// What one worker measured.
struct WorkerOutcome {
    latency: Histogram,
    requests: u64,
    errors: u64,
}

fn worker(config: &LoadConfig, deadline: Instant, lane: usize) -> Result<WorkerOutcome, EmxError> {
    let mut client = HttpClient::new(config.addr.clone());
    let mut latency = Histogram::new();
    let mut requests = 0u64;
    let mut errors = 0u64;
    let mut next_app = lane; // stagger app choice across workers
    while Instant::now() < deadline {
        let app = &config.apps[next_app % config.apps.len()];
        next_app += 1;
        let body = wire::estimate_request(app);
        let started = Instant::now();
        let outcome = client.post_json("/v1/estimate", &body);
        let elapsed = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        requests += 1;
        latency.record(elapsed);
        match outcome {
            Ok((200, doc)) if doc.get("status").and_then(Value::as_str) == Some("ok") => {}
            Ok(_) => errors += 1,
            Err(e) => {
                // A connection that never works is an input error (bad
                // address), not a measured service error: fail fast on
                // the very first request, count errors afterwards.
                if requests == 1 {
                    return Err(EmxError::io(&config.addr, &e));
                }
                errors += 1;
            }
        }
    }
    Ok(WorkerOutcome {
        latency,
        requests,
        errors,
    })
}

/// Runs the load and builds the `emx.load-report/1` document.
///
/// # Errors
///
/// Unreachable server (input error) and worker thread loss (internal).
/// Request-level failures are *not* errors here — they are counted in
/// the report's `errors` field; the caller decides whether a nonzero
/// count fails the run.
pub fn run_load(config: &LoadConfig) -> Result<Value, EmxError> {
    let concurrency = config.concurrency.max(1);
    let started = Instant::now();
    let deadline = started + Duration::from_millis(config.duration_ms);
    let outcomes: Vec<Result<WorkerOutcome, EmxError>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..concurrency)
            .map(|lane| s.spawn(move || worker(config, deadline, lane)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(EmxError::internal(
                        "load.worker_lost",
                        "a load worker panicked",
                    ))
                })
            })
            .collect()
    });
    let elapsed_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);

    let mut latency = Histogram::new();
    let mut requests = 0u64;
    let mut errors = 0u64;
    for outcome in outcomes {
        let outcome = outcome?;
        latency.merge(&outcome.latency);
        requests += outcome.requests;
        errors += outcome.errors;
    }

    if config.shutdown_after {
        let response = crate::client::request_once(&config.addr, "POST", "/v1/shutdown", None)
            .map_err(|e| EmxError::io(&config.addr, &e).context("shutdown request"))?;
        if response.status != 200 {
            return Err(EmxError::new(
                emx_core::ErrorKind::Io,
                "load.shutdown_refused",
                format!("shutdown request answered {}", response.status),
            ));
        }
    }

    let mut doc = Value::object();
    doc.set("schema", wire::LOAD_REPORT_SCHEMA);
    doc.set("concurrency", concurrency as u64);
    doc.set("duration_ms", elapsed_ms);
    doc.set("requests", requests);
    doc.set("errors", errors);
    doc.set(
        "rps",
        if elapsed_ms == 0 {
            0.0
        } else {
            requests as f64 * 1000.0 / elapsed_ms as f64
        },
    );
    let mut lat = Value::object();
    lat.set("count", latency.count());
    lat.set("min", latency.min());
    lat.set("p50", latency.percentile(50.0));
    lat.set("p90", latency.percentile(90.0));
    lat.set("p99", latency.percentile(99.0));
    lat.set("max", latency.max());
    lat.set("mean", latency.mean());
    doc.set("latency_us", lat);
    Ok(doc)
}

/// Asserts the fields tooling relies on are present in `report`.
/// Exposed for the binary's self-check and the tests.
pub fn validate_report(report: &Value) -> Result<(), String> {
    if report.get("schema").and_then(Value::as_str) != Some(wire::LOAD_REPORT_SCHEMA) {
        return Err(format!(
            "report schema must be {}",
            wire::LOAD_REPORT_SCHEMA
        ));
    }
    for field in ["concurrency", "duration_ms", "requests", "errors"] {
        if report.get(field).and_then(Value::as_u64).is_none() {
            return Err(format!("report field `{field}` missing or not an integer"));
        }
    }
    if report.get("rps").and_then(Value::as_f64).is_none() {
        return Err("report field `rps` missing".to_owned());
    }
    let Some(latency) = report.get("latency_us") else {
        return Err("report field `latency_us` missing".to_owned());
    };
    for field in ["count", "min", "p50", "p90", "p99", "max"] {
        if latency.get(field).and_then(Value::as_u64).is_none() {
            return Err(format!("latency field `{field}` missing"));
        }
    }
    Ok(())
}
