//! The service wire format: `emx.serve-request/1` in,
//! `emx.serve-response/1` out.
//!
//! Requests and responses are plain JSON over the existing deterministic
//! [`emx_obs::json`] writer, so a response computed twice from the same
//! inputs is byte-identical — the same contract every other `emx.*/1`
//! schema already carries (see `docs/SCHEMAS.md`). Parsing failures are
//! typed [`WireError`]s carrying an HTTP status and a stable machine
//! code; the server turns them into error envelopes instead of dropping
//! the connection.

use emx_obs::json::Value;

/// Schema tag every request body must carry.
pub const REQUEST_SCHEMA: &str = "emx.serve-request/1";
/// Schema tag on every response envelope.
pub const RESPONSE_SCHEMA: &str = "emx.serve-response/1";
/// Schema tag on `emx-load` summaries.
pub const LOAD_REPORT_SCHEMA: &str = "emx.load-report/1";

/// A typed request-level failure: HTTP status + stable code + message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// HTTP status for the response carrying this error.
    pub status: u16,
    /// Stable machine code (`serve.bad_json`, `parse.asm`, …).
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl WireError {
    /// Creates a typed wire error.
    pub fn new(status: u16, code: &'static str, message: impl Into<String>) -> Self {
        WireError {
            status,
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]", self.message, self.code)
    }
}

impl std::error::Error for WireError {}

/// One parsed service request body.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeRequest {
    /// Price one program on the macro-model (micro-batched server-side).
    Estimate {
        /// Name of a built-in Table II application (`gcd`, `ins_sort`, …).
        app: Option<String>,
        /// Inline assembly source, as an alternative to `app`.
        program: Option<String>,
        /// Optional inline TIE extension source for `program`.
        tie: Option<String>,
    },
    /// Run a design-space exploration over a named candidate space.
    Dse {
        /// Candidate-space name (`reed-solomon`, …).
        workload: String,
        /// Optional area budget in net-equivalents.
        budget: Option<f64>,
    },
    /// Fetch the (lazily computed, memoized) characterization report.
    CharacterizeReport,
}

/// Parses one request body.
///
/// # Errors
///
/// [`WireError`] with status 400 and a stable code for each failure
/// mode: invalid UTF-8/JSON, missing or unknown `schema`, missing or
/// unknown `kind`, and per-kind field validation.
pub fn parse_request(body: &[u8]) -> Result<ServeRequest, WireError> {
    let text = std::str::from_utf8(body)
        .map_err(|e| WireError::new(400, "serve.bad_utf8", format!("body is not UTF-8: {e}")))?;
    let doc = Value::parse(text).map_err(|e| {
        WireError::new(
            400,
            "serve.bad_json",
            format!("body is not valid JSON: {e}"),
        )
    })?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or_else(|| WireError::new(400, "serve.missing_schema", "body has no `schema` field"))?;
    if schema != REQUEST_SCHEMA {
        return Err(WireError::new(
            400,
            "serve.unknown_schema",
            format!("unsupported schema `{schema}` (this server speaks {REQUEST_SCHEMA})"),
        ));
    }
    let kind = doc
        .get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| WireError::new(400, "serve.missing_kind", "body has no `kind` field"))?;
    let field = |name: &str| doc.get(name).and_then(Value::as_str).map(str::to_owned);
    match kind {
        "estimate" => {
            let app = field("app");
            let program = field("program");
            if app.is_none() == program.is_none() {
                return Err(WireError::new(
                    400,
                    "serve.bad_estimate",
                    "an estimate request needs exactly one of `app` or `program`",
                ));
            }
            Ok(ServeRequest::Estimate {
                app,
                program,
                tie: field("tie"),
            })
        }
        "dse" => {
            let workload = field("workload").ok_or_else(|| {
                WireError::new(
                    400,
                    "serve.bad_dse",
                    "a dse request needs a `workload` name",
                )
            })?;
            let budget = match doc.get("budget") {
                None => None,
                Some(v) => Some(v.as_f64().ok_or_else(|| {
                    WireError::new(400, "serve.bad_dse", "`budget` must be a number")
                })?),
            };
            Ok(ServeRequest::Dse { workload, budget })
        }
        "characterize-report" => Ok(ServeRequest::CharacterizeReport),
        other => Err(WireError::new(
            400,
            "serve.unknown_kind",
            format!("unknown request kind `{other}`"),
        )),
    }
}

/// Builds an estimate request body (the client side of
/// [`parse_request`]); used by `emx-load` and the tests.
pub fn estimate_request(app: &str) -> Value {
    let mut doc = Value::object();
    doc.set("schema", REQUEST_SCHEMA);
    doc.set("kind", "estimate");
    doc.set("app", app);
    doc
}

/// The success envelope: `{"schema", "status": "ok", "kind", "result"}`.
pub fn ok_envelope(kind: &str, result: Value) -> Value {
    let mut doc = Value::object();
    doc.set("schema", RESPONSE_SCHEMA);
    doc.set("status", "ok");
    doc.set("kind", kind);
    doc.set("result", result);
    doc
}

/// The error envelope:
/// `{"schema", "status": "error", "error": {"code", "message"}}`.
pub fn error_envelope(code: &str, message: &str) -> Value {
    let mut doc = Value::object();
    doc.set("schema", RESPONSE_SCHEMA);
    doc.set("status", "error");
    let mut error = Value::object();
    error.set("code", code);
    error.set("message", message);
    doc.set("error", error);
    doc
}

/// The estimate result document. Kept to exactly the fields the
/// estimation cache persists (`energy_pj`, `cycles`), so a cache-warm
/// response is byte-identical to a cache-cold one by construction.
pub fn estimate_result(workload: &str, energy_pj: f64, cycles: u64) -> Value {
    let mut doc = Value::object();
    doc.set("workload", workload);
    doc.set("energy_pj", energy_pj);
    doc.set("cycles", cycles);
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_an_app_estimate() {
        let body = estimate_request("gcd").to_string();
        let req = parse_request(body.as_bytes()).unwrap();
        assert_eq!(
            req,
            ServeRequest::Estimate {
                app: Some("gcd".to_owned()),
                program: None,
                tie: None,
            }
        );
    }

    #[test]
    fn parses_a_dse_request() {
        let body = r#"{"schema":"emx.serve-request/1","kind":"dse","workload":"reed-solomon","budget":500.0}"#;
        let req = parse_request(body.as_bytes()).unwrap();
        assert_eq!(
            req,
            ServeRequest::Dse {
                workload: "reed-solomon".to_owned(),
                budget: Some(500.0),
            }
        );
    }

    #[test]
    fn typed_errors_for_bad_bodies() {
        let cases: &[(&[u8], &str)] = &[
            (b"\xff\xfe", "serve.bad_utf8"),
            (b"{\"schema\":", "serve.bad_json"),
            (b"{}", "serve.missing_schema"),
            (
                br#"{"schema":"emx.serve-request/9","kind":"estimate"}"#,
                "serve.unknown_schema",
            ),
            (br#"{"schema":"emx.serve-request/1"}"#, "serve.missing_kind"),
            (
                br#"{"schema":"emx.serve-request/1","kind":"transmogrify"}"#,
                "serve.unknown_kind",
            ),
            (
                br#"{"schema":"emx.serve-request/1","kind":"estimate"}"#,
                "serve.bad_estimate",
            ),
            (
                br#"{"schema":"emx.serve-request/1","kind":"estimate","app":"gcd","program":"halt"}"#,
                "serve.bad_estimate",
            ),
            (
                br#"{"schema":"emx.serve-request/1","kind":"dse"}"#,
                "serve.bad_dse",
            ),
        ];
        for (body, code) in cases {
            let err = parse_request(body).unwrap_err();
            assert_eq!(err.code, *code, "{}", String::from_utf8_lossy(body));
            assert_eq!(err.status, 400);
        }
    }

    #[test]
    fn envelopes_are_deterministic() {
        let a = ok_envelope("estimate", estimate_result("gcd", 1234.5, 42)).to_string();
        let b = ok_envelope("estimate", estimate_result("gcd", 1234.5, 42)).to_string();
        assert_eq!(a, b);
        assert!(
            a.contains(r#""schema": "emx.serve-response/1""#)
                || a.contains(r#""schema":"emx.serve-response/1""#)
        );
    }
}
