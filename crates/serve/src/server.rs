//! The service itself: listener, bounded connection queue, worker pool,
//! request routing, and graceful shutdown.
//!
//! Threading model:
//!
//! * the **accept thread** (the caller of [`Server::run`]) pulls
//!   connections off the listener into a bounded queue — when the queue
//!   is full it answers `503` with a typed error document instead of
//!   letting the backlog grow without bound,
//! * a fixed pool of **connection workers** pops the queue and speaks
//!   keep-alive HTTP/1.1, one connection at a time per worker; reads
//!   use a short poll window, and a connection that sits idle while
//!   other connections wait in the queue is handed back within one
//!   window rather than pinning its worker — idle keep-alive clients
//!   cannot starve new traffic even with a single-worker pool, and the
//!   hand-off adds at most ~5 ms, not a long poll. Each request is
//!   instrumented as a span on its worker's [`Track::Request`] lane
//!   with latencies recorded into the shared `serve.latency_us`
//!   histogram,
//! * one **batching thread** (see [`crate::batch`]) coalesces all
//!   estimate traffic into shared [`emx_dse::evaluate_batch`] calls
//!   over the process-wide [`SharedEstimationCache`].
//!
//! Shutdown (`POST /v1/shutdown`) is graceful by construction: the flag
//! flips, a self-connection wakes the blocking accept, already-queued
//! connections are still served (with `connection: close`), the batch
//! thread drains its pending jobs, and the cache is flushed one last
//! time before [`Server::run`] returns.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use emx_core::{Characterizer, EmxError, EnergyMacroModel};
use emx_dse::{CandidateSpace, EnumeratedCandidate, SharedEstimationCache};
use emx_obs::json::Value;
use emx_obs::{ChromeTraceWriter, Collector, Track};
use emx_sim::ProcConfig;
use emx_tie::lang::parse_extension;
use emx_tie::ExtensionSet;
use emx_workloads::{suite, Workload};

use crate::batch::{BatchConfig, Batcher};
use crate::http::{self, FrameError, Limits, Request};
use crate::wire::{self, ServeRequest, WireError};

/// Which training suite the lazy characterize-report endpoint runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CharacterizeMode {
    /// The full training suite (the production default; one-time cost on
    /// the first request, memoized afterwards).
    Full,
    /// The small single-event calibration set — cheap enough for tests,
    /// deliberately too small to determine all 21 coefficients.
    Calibration,
}

/// Service configuration. `Default` binds an ephemeral localhost port.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Connection workers (0 = one per core, capped at 8).
    pub workers: usize,
    /// Bounded pending-connection queue depth; overflow answers `503`.
    pub queue_depth: usize,
    /// HTTP framing limits.
    pub limits: Limits,
    /// Micro-batching tuning.
    pub batch: BatchConfig,
    /// Crash-safe cache persistence path. Loaded (with recovery) at
    /// startup, flushed after every batch and once more at shutdown.
    pub cache_path: Option<String>,
    /// Suite behind `GET /v1/characterize-report`.
    pub characterize: CharacterizeMode,
    /// Chrome trace written at shutdown, if set.
    pub chrome_trace: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 0,
            queue_depth: 64,
            limits: Limits::default(),
            batch: BatchConfig::default(),
            cache_path: None,
            characterize: CharacterizeMode::Full,
            chrome_trace: None,
        }
    }
}

/// What one completed service run did, derived from the final
/// observability counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeSummary {
    /// Requests answered (including error responses).
    pub requests: u64,
    /// Requests answered with an error envelope.
    pub errors: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Micro-batches evaluated.
    pub batches: u64,
    /// Entries in the estimation cache at shutdown.
    pub cache_entries: usize,
}

fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One accepted connection: buffered read half plus write half. Kept as
/// a unit so an idle keep-alive connection can be pushed back onto the
/// queue (buffered-but-unparsed pipelined bytes included) instead of
/// pinning a worker — with a small pool, a handful of idle clients must
/// not starve new connections.
struct Conn {
    reader: std::io::BufReader<TcpStream>,
    writer: TcpStream,
}

/// Everything the worker threads share.
struct Shared {
    model: Arc<EnergyMacroModel>,
    cache: SharedEstimationCache,
    config: ServeConfig,
    addr: SocketAddr,
    apps: Vec<Workload>,
    obs: Arc<Mutex<Collector>>,
    shutdown: AtomicBool,
    queue: Mutex<VecDeque<Conn>>,
    queue_cv: Condvar,
    /// Memoized characterize-report JSON (or its typed failure).
    report: Mutex<Option<Result<Value, WireError>>>,
}

/// A bound-but-not-yet-running service instance.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and loads (or recovers) the persisted cache.
    ///
    /// # Errors
    ///
    /// Binding failures and unrecoverable cache corruption, as
    /// [`EmxError`] (both input-class, exit code 1).
    pub fn bind(model: EnergyMacroModel, config: ServeConfig) -> Result<Server, EmxError> {
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| EmxError::io(&config.addr, &e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| EmxError::io(&config.addr, &e))?;
        let cache = match &config.cache_path {
            Some(path) => {
                let (cache, recovery) = SharedEstimationCache::load_or_recover(path)
                    .map_err(|e| EmxError::parse("cache.corrupt", e.to_string()).with_source(e))?;
                if let Some(recovery) = recovery {
                    eprintln!("emx-serve: warning: cache recovered: {recovery}");
                }
                cache
            }
            None => SharedEstimationCache::default(),
        };
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                model: Arc::new(model),
                cache,
                addr,
                apps: emx_workloads::apps::all(),
                obs: Arc::new(Mutex::new(Collector::new())),
                shutdown: AtomicBool::new(false),
                queue: Mutex::new(VecDeque::new()),
                queue_cv: Condvar::new(),
                report: Mutex::new(None),
                config,
            }),
        })
    }

    /// The bound address (useful with an ephemeral port request).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Serves until a `POST /v1/shutdown` arrives, then drains in-flight
    /// work, flushes the cache, and returns the run's summary.
    ///
    /// # Errors
    ///
    /// Only shutdown-path failures (final cache flush, trace write);
    /// per-connection and per-request failures are answered on the wire
    /// and counted, never returned.
    pub fn run(self) -> Result<ServeSummary, EmxError> {
        let shared = &*self.shared;
        let workers = resolve_workers(shared.config.workers);
        let mut batcher = Batcher::spawn(
            Arc::clone(&shared.model),
            shared.cache.clone(),
            shared.config.cache_path.clone(),
            shared.config.batch.clone(),
            Arc::clone(&shared.obs),
        );

        std::thread::scope(|s| {
            let batcher = &batcher;
            for k in 0..workers {
                s.spawn(move || {
                    while let Some(conn) = pop_connection(shared) {
                        if let Some(idle) = serve_connection(k as u32, conn, shared, batcher) {
                            requeue_connection(idle, shared);
                        }
                    }
                });
            }

            for stream in self.listener.incoming() {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                enqueue_connection(stream, shared);
            }
            // Wake every worker blocked on an empty queue.
            shared.queue_cv.notify_all();
        });
        batcher.drain();

        if let Some(path) = &shared.config.cache_path {
            shared
                .cache
                .save(path)
                .map_err(|e| EmxError::new(emx_core::ErrorKind::Io, "io.file", e.to_string()))?;
        }
        let obs = lock_recovering(&shared.obs);
        if let Some(path) = &shared.config.chrome_trace {
            let mut text = ChromeTraceWriter::new("emx-serve").to_string(&obs);
            text.push('\n');
            std::fs::write(path, text).map_err(|e| EmxError::io(path, &e))?;
        }
        Ok(ServeSummary {
            requests: obs.counter("serve.requests") as u64,
            errors: obs.counter("serve.errors") as u64,
            connections: obs.counter("serve.connections") as u64,
            batches: obs.counter("serve.batches") as u64,
            cache_entries: shared.cache.len(),
        })
    }
}

/// 0 = one worker per core, capped at 8 (connection workers mostly wait
/// on the batcher; more lanes than cores buys nothing).
fn resolve_workers(workers: usize) -> usize {
    if workers == 0 {
        std::thread::available_parallelism()
            .map_or(2, |n| n.get())
            .min(8)
    } else {
        workers
    }
}

/// Read-timeout window for worker reads. A worker blocked in a read on
/// an idle keep-alive connection cannot be interrupted when new work
/// arrives, so this window *is* the bound on how long queued work waits
/// behind an idle connection — with a small pool that bound is the
/// service's tail latency. 5 ms keeps it invisible next to request
/// latencies while an idle connection still costs its worker only a few
/// hundred timed-out reads per second.
const READ_POLL: Duration = Duration::from_millis(5);

/// Scale factor holding the mid-request stall budget at its historical
/// value: the previous 250 ms window × the default 40 polls gave a
/// slow-but-live client ~10 s to finish a request, so the 50× shorter
/// window gets 50× the polls.
const POLL_SCALE: u32 = 50;

fn enqueue_connection(stream: TcpStream, shared: &Shared) {
    lock_recovering(&shared.obs).add("serve.connections", 1.0);
    // Short read timeouts keep idle keep-alive connections responsive to
    // shutdown (and requeueable) without a dedicated poll thread.
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let conn = Conn {
        reader: std::io::BufReader::new(read_half),
        writer: stream,
    };
    let mut queue = lock_recovering(&shared.queue);
    if queue.len() >= shared.config.queue_depth {
        drop(queue);
        lock_recovering(&shared.obs).add("serve.rejected", 1.0);
        let mut conn = conn;
        let body =
            wire::error_envelope("serve.overloaded", "request queue is full; retry").to_string();
        let _ = http::write_response(&mut conn.writer, 503, body.as_bytes(), false);
        return;
    }
    queue.push_back(conn);
    drop(queue);
    shared.queue_cv.notify_one();
}

/// Puts an idle (but still open) connection back at the end of the
/// queue so the worker can serve whoever is waiting behind it. Bypasses
/// the depth limit: the connection is already accepted and answering it
/// `503` now would be a lie.
fn requeue_connection(conn: Conn, shared: &Shared) {
    let mut queue = lock_recovering(&shared.queue);
    queue.push_back(conn);
    drop(queue);
    shared.queue_cv.notify_one();
}

/// Pops the next pending connection, blocking until one arrives or the
/// service is shutting down *and* the queue is drained — queued
/// connections accepted before shutdown are still served.
fn pop_connection(shared: &Shared) -> Option<Conn> {
    let mut queue = lock_recovering(&shared.queue);
    loop {
        if let Some(stream) = queue.pop_front() {
            return Some(stream);
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return None;
        }
        let (guard, _) = shared
            .queue_cv
            .wait_timeout(queue, Duration::from_millis(250))
            .unwrap_or_else(PoisonError::into_inner);
        queue = guard;
    }
}

/// Serves requests off one connection until it goes idle, closes, or
/// fails. Returns `Some(conn)` when the connection is merely idle and
/// should be requeued for fairness; `None` when it is finished.
fn serve_connection(lane: u32, conn: Conn, shared: &Shared, batcher: &Batcher) -> Option<Conn> {
    let Conn {
        mut reader,
        mut writer,
    } = conn;

    // The mid-request truncation budget is `max_request_polls` ×
    // window; scale the poll count to the short window so the budget
    // stays ~10 s (see [`POLL_SCALE`]).
    let mut limits = shared.config.limits.clone();
    limits.max_request_polls = limits.max_request_polls.saturating_mul(POLL_SCALE);
    let _ = reader.get_ref().set_read_timeout(Some(READ_POLL));

    loop {
        match http::read_request(&mut reader, &limits) {
            Ok(request) => {
                let mut local = lock_recovering(&shared.obs).fork();
                let span = local.begin_on(
                    format!("{} {}", request.method, request.target),
                    Track::Request(lane),
                );
                let started = Instant::now();
                let outcome = route(&request, shared, batcher, &mut local);
                local.end(span);
                let elapsed = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                local.record("serve.latency_us", elapsed);
                local.add("serve.requests", 1.0);
                let (status, body) = match outcome {
                    Ok((kind, result)) => (200, wire::ok_envelope(kind, result)),
                    Err(e) => {
                        local.add("serve.errors", 1.0);
                        (e.status, wire::error_envelope(e.code, &e.message))
                    }
                };
                lock_recovering(&shared.obs).absorb(local);
                let keep = !shared.shutdown.load(Ordering::SeqCst);
                let body = body.to_string();
                if http::write_response(&mut writer, status, body.as_bytes(), keep).is_err() {
                    return None;
                }
                if !keep {
                    return None;
                }
            }
            Err(FrameError::Closed) => return None,
            Err(FrameError::IdleTimeout) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return None;
                }
                // Idle, not broken. Hand it back only when someone is
                // actually waiting — requeueing to an empty queue would
                // just churn — otherwise keep listening; queued work
                // arriving later is noticed within one poll window.
                if !lock_recovering(&shared.queue).is_empty() {
                    return Some(Conn { reader, writer });
                }
            }
            Err(e) => {
                // Framing failed: the byte stream can no longer be
                // trusted, so answer with a typed document and close —
                // never drop the connection silently.
                lock_recovering(&shared.obs).add("serve.errors", 1.0);
                if e.responds() {
                    let body = wire::error_envelope(e.code(), &e.to_string()).to_string();
                    let _ = http::write_response(&mut writer, e.status(), body.as_bytes(), false);
                }
                return None;
            }
        }
    }
}

/// Routes one request to its handler. `Ok` carries the response kind
/// and result document; `Err` becomes a typed error envelope.
fn route(
    request: &Request,
    shared: &Shared,
    batcher: &Batcher,
    obs: &mut Collector,
) -> Result<(&'static str, Value), WireError> {
    match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/healthz") => {
            let mut result = Value::object();
            result.set("ok", true);
            Ok(("health", result))
        }
        ("GET", "/v1/stats") => Ok(("stats", stats_document(shared))),
        ("POST", "/v1/estimate") => match wire::parse_request(&request.body)? {
            ServeRequest::Estimate { app, program, tie } => estimate(
                shared,
                batcher,
                app.as_deref(),
                program.as_deref(),
                tie.as_deref(),
            ),
            _ => Err(WireError::new(
                400,
                "serve.kind_mismatch",
                "/v1/estimate only accepts `estimate` requests",
            )),
        },
        ("POST", "/v1/dse") => match wire::parse_request(&request.body)? {
            ServeRequest::Dse { workload, budget } => dse(shared, &workload, budget, obs),
            _ => Err(WireError::new(
                400,
                "serve.kind_mismatch",
                "/v1/dse only accepts `dse` requests",
            )),
        },
        ("GET" | "POST", "/v1/characterize-report") => characterize_report(shared, obs),
        ("POST", "/v1/shutdown") => {
            initiate_shutdown(shared);
            let mut result = Value::object();
            result.set("draining", true);
            Ok(("shutdown", result))
        }
        (
            _,
            "/healthz"
            | "/v1/stats"
            | "/v1/estimate"
            | "/v1/dse"
            | "/v1/characterize-report"
            | "/v1/shutdown",
        ) => Err(WireError::new(
            405,
            "serve.method_not_allowed",
            format!("method {} is not supported here", request.method),
        )),
        (_, target) => Err(WireError::new(
            404,
            "serve.not_found",
            format!("no such endpoint `{target}`"),
        )),
    }
}

fn estimate(
    shared: &Shared,
    batcher: &Batcher,
    app: Option<&str>,
    program: Option<&str>,
    tie: Option<&str>,
) -> Result<(&'static str, Value), WireError> {
    let (name, workload) = match (app, program) {
        (Some(app), _) => {
            let workload = shared
                .apps
                .iter()
                .find(|w| w.name() == app)
                .cloned()
                .ok_or_else(|| {
                    WireError::new(
                        422,
                        "serve.unknown_app",
                        format!(
                            "unknown application `{app}` (available: {})",
                            shared
                                .apps
                                .iter()
                                .map(Workload::name)
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    )
                })?;
            (app.to_owned(), workload)
        }
        (None, Some(source)) => {
            let ext = match tie {
                Some(tie_source) => parse_extension(tie_source).map_err(|e| {
                    WireError::new(422, "parse.tie", format!("inline tie source: {e}"))
                })?,
                None => ExtensionSet::empty(),
            };
            let workload = Workload::try_assemble("inline", "inline request", ext, source, vec![])
                .map_err(|e| WireError::new(422, "parse.asm", format!("inline program: {e}")))?;
            ("inline".to_owned(), workload)
        }
        (None, None) => unreachable!("parse_request enforces app xor program"),
    };

    let candidate = EnumeratedCandidate {
        name: name.clone(),
        mask: 0,
        options: vec![],
        area: 0.0,
        workload,
    };
    let reply = batcher.submit(candidate);
    let point = reply.recv_timeout(Duration::from_secs(120)).map_err(|_| {
        WireError::new(
            500,
            "serve.batch_lost",
            "the evaluation batch did not answer in time",
        )
    })??;
    Ok((
        "estimate",
        wire::estimate_result(&name, point.energy_pj, point.cycles),
    ))
}

fn dse(
    shared: &Shared,
    workload: &str,
    budget: Option<f64>,
    obs: &mut Collector,
) -> Result<(&'static str, Value), WireError> {
    let space = CandidateSpace::by_name(workload).ok_or_else(|| {
        WireError::new(
            422,
            "serve.unknown_space",
            format!(
                "unknown candidate space `{workload}` (available: {})",
                CandidateSpace::names().join(", ")
            ),
        )
    })?;
    let exploration = {
        let mut cache = shared.cache.lock();
        emx_dse::explore(
            &shared.model,
            &space,
            budget,
            &ProcConfig::default(),
            shared.config.batch.jobs,
            &mut cache,
            obs,
        )
        .map_err(|e| WireError::new(422, "serve.dse_failed", format!("{e} [{}]", e.code())))?
    };
    if let Some(path) = &shared.config.cache_path {
        let _ = shared.cache.save(path);
    }
    let options: Vec<(String, f64)> = space
        .options()
        .iter()
        .map(|o| (o.name.clone(), o.area()))
        .collect();
    Ok(("dse", emx_dse::report::to_json(&exploration, &options)))
}

fn characterize_report(
    shared: &Shared,
    obs: &mut Collector,
) -> Result<(&'static str, Value), WireError> {
    let mut memo = lock_recovering(&shared.report);
    if memo.is_none() {
        let workloads = match shared.config.characterize {
            CharacterizeMode::Full => suite::full_training_suite(),
            CharacterizeMode::Calibration => suite::calibration_programs(),
        };
        let cases = suite::training_cases(&workloads);
        let outcome = Characterizer::new(ProcConfig::default())
            .characterize_instrumented(&cases, obs)
            .map(|(_, report)| report.to_json())
            .map_err(|e| {
                let e = EmxError::from(e);
                WireError::new(500, e.code(), e.message().to_owned())
            });
        *memo = Some(outcome);
    }
    match memo.as_ref().expect("memo was just populated") {
        Ok(doc) => Ok(("characterize-report", doc.clone())),
        Err(e) => Err(e.clone()),
    }
}

/// Counters, histogram summaries, and cache occupancy as a JSON result.
fn stats_document(shared: &Shared) -> Value {
    let obs = lock_recovering(&shared.obs);
    let mut counters = Value::object();
    for (name, value) in obs.counters() {
        counters.set(name, *value);
    }
    let mut histograms = Value::object();
    for (name, hist) in obs.histograms() {
        let mut summary = Value::object();
        summary.set("count", hist.count());
        summary.set("min", hist.min());
        summary.set("p50", hist.percentile(50.0));
        summary.set("p90", hist.percentile(90.0));
        summary.set("p99", hist.percentile(99.0));
        summary.set("max", hist.max());
        summary.set("mean", hist.mean());
        histograms.set(name, summary);
    }
    drop(obs);
    let mut result = Value::object();
    result.set("counters", counters);
    result.set("histograms", histograms);
    result.set("cache_entries", shared.cache.len() as u64);
    result
}

/// Flips the shutdown flag and wakes everything that might be blocked:
/// the accept loop (via a self-connection) and the queue condvar.
fn initiate_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    shared.queue_cv.notify_all();
    // The listener blocks in accept(); a throwaway local connection gets
    // it to re-check the flag. Failure is harmless — the accept loop
    // also wakes on the next real connection.
    let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_millis(250));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_resolution_caps_auto() {
        assert!(resolve_workers(0) >= 1);
        assert!(resolve_workers(0) <= 8);
        assert_eq!(resolve_workers(3), 3);
    }
}
