//! # emx-serve — estimation as a long-running batched service
//!
//! The paper's flow (characterize → estimate → explore) exists in this
//! workspace as one-shot binaries; this crate turns it into a service
//! that answers continuous estimate/characterize/DSE traffic. It is
//! deliberately zero-dependency — HTTP/1.1 is hand-rolled over
//! [`std::net::TcpListener`], keeping the offline/no-registry
//! constraint the rest of the workspace already honors.
//!
//! * [`http`] — minimal HTTP/1.1 framing with typed [`http::FrameError`]s
//!   (malformed requests get a machine-readable error document, never a
//!   silently dropped connection),
//! * [`wire`] — the `emx.serve-request/1` / `emx.serve-response/1`
//!   JSON wire format over the workspace's deterministic JSON writer,
//! * [`batch`] — adaptive micro-batching: concurrent estimate requests
//!   coalesce into shared [`emx_dse::evaluate_batch`] calls over one
//!   process-wide [`emx_dse::SharedEstimationCache`],
//! * [`server`] — the bounded-queue worker-pool server with per-request
//!   observability ([`emx_obs::Track::Request`] lanes, latency
//!   histograms) and graceful, cache-flushing shutdown,
//! * [`client`] — a small keep-alive client for the wire format,
//! * [`loadgen`] — the `emx-load` load generator emitting versioned
//!   `emx.load-report/1` summaries.
//!
//! # Example
//!
//! ```no_run
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use emx_serve::{Server, ServeConfig};
//!
//! let text = std::fs::read_to_string("model.txt")?;
//! let model = emx_core::EnergyMacroModel::from_text(&text)?;
//! let server = Server::bind(model, ServeConfig::default())?;
//! println!("listening on {}", server.local_addr());
//! let summary = server.run()?; // until POST /v1/shutdown
//! println!("served {} requests", summary.requests);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod client;
pub mod http;
pub mod loadgen;
pub mod server;
pub mod wire;

pub use batch::{BatchConfig, Batcher, EstimatePoint};
pub use client::{request_once, HttpClient, HttpResponse};
pub use loadgen::{run_load, LoadConfig};
pub use server::{CharacterizeMode, ServeConfig, ServeSummary, Server};
pub use wire::{ServeRequest, WireError};
