//! Minimal HTTP/1.1 framing over blocking sockets.
//!
//! Hand-rolled on purpose: the workspace builds fully offline with no
//! crates.io dependencies, so the service speaks just enough HTTP/1.1
//! for its own wire format — `Content-Length`-framed request bodies,
//! keep-alive connections, and nothing else (no chunked transfer, no
//! TLS, no compression). Every framing failure is a typed
//! [`FrameError`] so the server can answer with a machine-readable
//! error document instead of silently dropping the connection.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Framing limits, all enforced *before* buffering unbounded input.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum declared `Content-Length`.
    pub max_body_bytes: usize,
    /// How many read-timeout windows to wait mid-request before calling
    /// the request truncated. Timeouts *before* the first byte are
    /// reported as [`FrameError::IdleTimeout`] instead, so a keep-alive
    /// connection can sit idle indefinitely.
    pub max_request_polls: u32,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
            max_request_polls: 40,
        }
    }
}

/// One parsed request: method, target path, lowercased headers, body.
#[derive(Debug, Clone)]
pub struct Request {
    /// The request method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// The request target (`/v1/estimate`, …), as sent.
    pub target: String,
    /// Header name/value pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be framed off the socket.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameError {
    /// The peer closed the connection cleanly between requests. Not an
    /// error — the keep-alive loop just ends.
    Closed,
    /// A read timed out before the first byte of a request. The
    /// connection is idle, not broken; the caller decides whether to
    /// keep waiting (normal operation) or wind down (shutdown).
    IdleTimeout,
    /// The peer stopped sending mid-request (EOF or timeout after the
    /// first byte).
    Truncated,
    /// Request line + headers exceeded [`Limits::max_head_bytes`].
    HeadTooLarge {
        /// The enforced limit.
        limit: usize,
    },
    /// The first line was not `METHOD TARGET HTTP/1.x`.
    BadRequestLine(String),
    /// A header line had no `:` separator.
    BadHeader(String),
    /// `Content-Length` was present but not a number.
    BadLength(String),
    /// A method that carries a body (`POST`/`PUT`) arrived without
    /// `Content-Length` (chunked transfer is not supported).
    MissingLength,
    /// The declared `Content-Length` exceeded [`Limits::max_body_bytes`].
    BodyTooLarge {
        /// The declared body length.
        length: usize,
        /// The enforced limit.
        limit: usize,
    },
    /// The socket itself failed.
    Io(io::ErrorKind),
}

impl FrameError {
    /// The HTTP status a typed error response should carry.
    pub fn status(&self) -> u16 {
        match self {
            FrameError::HeadTooLarge { .. } => 431,
            FrameError::MissingLength => 411,
            FrameError::BodyTooLarge { .. } => 413,
            _ => 400,
        }
    }

    /// The stable machine code for the error document.
    pub fn code(&self) -> &'static str {
        match self {
            FrameError::Closed => "serve.closed",
            FrameError::IdleTimeout => "serve.idle",
            FrameError::Truncated => "serve.truncated_request",
            FrameError::HeadTooLarge { .. } => "serve.head_too_large",
            FrameError::BadRequestLine(_) => "serve.bad_request_line",
            FrameError::BadHeader(_) => "serve.bad_header",
            FrameError::BadLength(_) => "serve.bad_length",
            FrameError::MissingLength => "serve.missing_length",
            FrameError::BodyTooLarge { .. } => "serve.body_too_large",
            FrameError::Io(_) => "serve.io",
        }
    }

    /// Whether the server should still attempt a typed error response.
    /// After a clean close, an idle timeout, or a socket failure there
    /// is nobody (or no way) to answer.
    pub fn responds(&self) -> bool {
        !matches!(
            self,
            FrameError::Closed | FrameError::IdleTimeout | FrameError::Io(_)
        )
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::IdleTimeout => write!(f, "idle connection"),
            FrameError::Truncated => write!(f, "request truncated mid-frame"),
            FrameError::HeadTooLarge { limit } => {
                write!(f, "request head exceeds {limit} bytes")
            }
            FrameError::BadRequestLine(line) => write!(f, "malformed request line `{line}`"),
            FrameError::BadHeader(line) => write!(f, "malformed header line `{line}`"),
            FrameError::BadLength(value) => write!(f, "bad content-length `{value}`"),
            FrameError::MissingLength => {
                write!(f, "request body requires a content-length header")
            }
            FrameError::BodyTooLarge { length, limit } => {
                write!(f, "declared body of {length} bytes exceeds limit {limit}")
            }
            FrameError::Io(kind) => write!(f, "socket error: {kind:?}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Reads exactly one byte, mapping timeouts and EOF to frame errors.
/// `started` says whether this request already produced bytes — it
/// selects between [`FrameError::IdleTimeout`]/[`FrameError::Closed`]
/// (before the first byte) and [`FrameError::Truncated`] (after).
fn read_byte(r: &mut impl BufRead, started: bool, polls_left: &mut u32) -> Result<u8, FrameError> {
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                return Err(if started {
                    FrameError::Truncated
                } else {
                    FrameError::Closed
                })
            }
            Ok(_) => return Ok(byte[0]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if !started {
                    return Err(FrameError::IdleTimeout);
                }
                if *polls_left == 0 {
                    return Err(FrameError::Truncated);
                }
                *polls_left -= 1;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e.kind())),
        }
    }
}

/// Reads and parses one request off `r`.
///
/// The caller is expected to have set a read timeout on the underlying
/// socket: timeouts on an idle connection come back as
/// [`FrameError::IdleTimeout`] so a serving loop can poll its shutdown
/// flag between requests.
///
/// # Errors
///
/// Any [`FrameError`]; see its variants for the status/code mapping.
pub fn read_request(r: &mut impl BufRead, limits: &Limits) -> Result<Request, FrameError> {
    let mut head: Vec<u8> = Vec::new();
    let mut polls_left = limits.max_request_polls;
    loop {
        let byte = read_byte(r, !head.is_empty(), &mut polls_left)?;
        head.push(byte);
        if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
            break;
        }
        if head.len() > limits.max_head_bytes {
            return Err(FrameError::HeadTooLarge {
                limit: limits.max_head_bytes,
            });
        }
    }

    let head_text = String::from_utf8_lossy(&head);
    let mut lines = head_text.lines().filter(|l| !l.is_empty());
    let request_line = lines.next().unwrap_or_default().to_owned();
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if v.starts_with("HTTP/1.") => (m, t, v),
        _ => return Err(FrameError::BadRequestLine(request_line.clone())),
    };
    let _ = version;
    let method = method.to_owned();
    let target = target.to_owned();

    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| FrameError::BadHeader(line.to_owned()))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => Some(
            v.parse::<usize>()
                .map_err(|_| FrameError::BadLength(v.clone()))?,
        ),
        None => None,
    };
    let length = match (length, method.as_str()) {
        (Some(n), _) => n,
        (None, "POST" | "PUT") => return Err(FrameError::MissingLength),
        (None, _) => 0,
    };
    if length > limits.max_body_bytes {
        return Err(FrameError::BodyTooLarge {
            length,
            limit: limits.max_body_bytes,
        });
    }

    let mut body = Vec::with_capacity(length);
    while body.len() < length {
        body.push(read_byte(r, true, &mut polls_left)?);
    }

    Ok(Request {
        method,
        target,
        headers,
        body,
    })
}

/// The reason phrase for the statuses this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Writes one `application/json` response.
///
/// # Errors
///
/// Propagates socket write errors; the caller drops the connection.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, FrameError> {
        read_request(&mut BufReader::new(bytes), &Limits::default())
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(b"POST /v1/estimate HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/v1/estimate");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn parses_a_get_without_length() {
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn typed_errors_for_malformed_frames() {
        assert!(matches!(
            parse(b"NONSENSE\r\n\r\n"),
            Err(FrameError::BadRequestLine(_))
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(FrameError::BadHeader(_))
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: soon\r\n\r\n"),
            Err(FrameError::BadLength(_))
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\n\r\n"),
            Err(FrameError::MissingLength)
        ));
        assert!(matches!(parse(b""), Err(FrameError::Closed)));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn body_limit_is_enforced_before_reading() {
        let limits = Limits {
            max_body_bytes: 8,
            ..Limits::default()
        };
        let err = read_request(
            &mut BufReader::new(&b"POST /x HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789"[..]),
            &limits,
        )
        .unwrap_err();
        assert_eq!(
            err,
            FrameError::BodyTooLarge {
                length: 9,
                limit: 8
            }
        );
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn head_limit_is_enforced() {
        let mut bytes = b"GET /x HTTP/1.1\r\n".to_vec();
        bytes.extend([b'a'; 64]);
        let limits = Limits {
            max_head_bytes: 32,
            ..Limits::default()
        };
        let err = read_request(&mut BufReader::new(&bytes[..]), &limits).unwrap_err();
        assert!(matches!(err, FrameError::HeadTooLarge { .. }));
        assert_eq!(err.status(), 431);
    }

    #[test]
    fn responses_round_trip_the_status_line() {
        let mut out = Vec::new();
        write_response(&mut out, 200, b"{}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
