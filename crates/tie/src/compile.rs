use std::collections::BTreeMap;

use emx_hwlib::{Category, DfGraph, GraphError, PrimOp};
use emx_isa::asm::{Assembler, CustomSignature};
use emx_isa::{CustomId, Opcode};

use crate::spec::{InputBind, OutputBind, StateId, StateReg};
use crate::TieError;

/// Logic levels the compiler budgets per pipeline cycle when deriving
/// instruction latency from the graph's critical path.
const LEVELS_PER_CYCLE: f64 = 2.0;

/// Critical-path weight of one primitive, in logic levels.
fn levels(op: PrimOp) -> f64 {
    match op.category() {
        Category::Multiplier | Category::TieMult | Category::TieMac => 3.0,
        Category::Shifter => 1.2,
        Category::AdderCmp | Category::TieAdd => 1.0,
        Category::Table => 1.0,
        Category::TieCsa => 0.5,
        Category::LogicMux => 0.4,
        Category::CustomReg => 0.0,
    }
}

#[derive(Debug, Clone)]
struct PendingInst {
    name: String,
    graph: DfGraph,
    inputs: Vec<InputBind>,
    outputs: Vec<OutputBind>,
    latency_override: Option<u8>,
}

/// Builds an extension set: declare state registers, add instructions,
/// then [`ExtensionBuilder::build`] to run the TIE compiler.
#[derive(Debug, Clone)]
pub struct ExtensionBuilder {
    name: String,
    states: Vec<StateReg>,
    insts: Vec<PendingInst>,
}

impl ExtensionBuilder {
    /// Creates a builder for an extension named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ExtensionBuilder {
            name: name.into(),
            states: Vec::new(),
            insts: Vec::new(),
        }
    }

    /// Declares a custom state register and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`TieError::DuplicateStateName`] on a repeated name.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=64`.
    pub fn state(&mut self, name: impl Into<String>, width: u8) -> Result<StateId, TieError> {
        let name = name.into();
        assert!(
            (1..=64).contains(&width),
            "state width {width} outside 1..=64"
        );
        if self.states.iter().any(|s| s.name == name) {
            return Err(TieError::DuplicateStateName(name));
        }
        self.states.push(StateReg { name, width });
        Ok(StateId(self.states.len() - 1))
    }

    /// Starts a new custom instruction over `graph`; bind its operands with
    /// the returned [`InstBuilder`].
    ///
    /// # Errors
    ///
    /// Returns [`TieError::BadInstName`] for names that are not valid
    /// identifiers or collide with base-ISA mnemonics, and
    /// [`TieError::DuplicateInstName`] for repeats within the extension.
    pub fn instruction(
        &mut self,
        name: impl Into<String>,
        graph: DfGraph,
    ) -> Result<InstBuilder<'_>, TieError> {
        let name = name.into();
        let valid = !name.is_empty()
            && name
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
        if !valid || Opcode::from_mnemonic(&name).is_some() {
            return Err(TieError::BadInstName(name));
        }
        if self.insts.iter().any(|i| i.name == name) {
            return Err(TieError::DuplicateInstName(name));
        }
        self.insts.push(PendingInst {
            name,
            graph,
            inputs: Vec::new(),
            outputs: Vec::new(),
            latency_override: None,
        });
        let index = self.insts.len() - 1;
        Ok(InstBuilder { ext: self, index })
    }

    /// Runs the TIE compiler: validates every instruction, derives
    /// latencies and resource vectors, and produces the [`ExtensionSet`].
    ///
    /// # Errors
    ///
    /// Returns the first [`TieError`] found (binding counts, duplicate or
    /// unknown bindings, width mismatches, zero latency overrides).
    pub fn build(self) -> Result<ExtensionSet, TieError> {
        let mut compiled = Vec::with_capacity(self.insts.len());
        for (index, pending) in self.insts.into_iter().enumerate() {
            compiled.push(compile_inst(pending, CustomId(index as u16), &self.states)?);
        }
        Ok(ExtensionSet {
            name: self.name,
            states: self.states,
            insts: compiled,
        })
    }
}

/// Binds the operands of one pending instruction. Obtained from
/// [`ExtensionBuilder::instruction`].
#[derive(Debug)]
pub struct InstBuilder<'a> {
    ext: &'a mut ExtensionBuilder,
    index: usize,
}

impl InstBuilder<'_> {
    fn pending(&mut self) -> &mut PendingInst {
        &mut self.ext.insts[self.index]
    }

    /// Binds the next graph input (in input-declaration order).
    ///
    /// # Errors
    ///
    /// Returns [`TieError::InputBindingCount`] if more bindings are given
    /// than the graph has inputs, [`TieError::UnknownState`] /
    /// [`TieError::StateWidthMismatch`] for bad state bindings, and
    /// [`TieError::PortTooWide`] if a GPR/imm binding drives a port wider
    /// than 32 bits.
    pub fn bind_input(&mut self, bind: InputBind) -> Result<&mut Self, TieError> {
        let states = self.ext.states.clone();
        let p = self.pending();
        let signature = p.graph.input_signature();
        if p.inputs.len() >= signature.len() {
            return Err(TieError::InputBindingCount {
                inst: p.name.clone(),
                expected: signature.len(),
                got: p.inputs.len() + 1,
            });
        }
        let (_, port_width) = signature[p.inputs.len()].clone();
        match bind {
            InputBind::GprS | InputBind::GprT | InputBind::Imm => {
                if port_width > 32 {
                    return Err(TieError::PortTooWide {
                        inst: p.name.clone(),
                        width: port_width,
                    });
                }
            }
            InputBind::State(id) => {
                let state = states.get(id.index()).ok_or(TieError::UnknownState {
                    inst: p.name.clone(),
                    index: id.index(),
                })?;
                if state.width != port_width {
                    return Err(TieError::StateWidthMismatch {
                        inst: p.name.clone(),
                        state: state.name.clone(),
                        state_width: state.width,
                        port_width,
                    });
                }
            }
        }
        p.inputs.push(bind);
        Ok(self)
    }

    /// Binds the next graph output (in output-declaration order).
    ///
    /// # Errors
    ///
    /// Returns [`TieError::OutputBindingCount`] on overflow,
    /// [`TieError::DuplicateBinding`] for a second GPR write or a repeated
    /// state write, plus the state-validation errors of
    /// [`InstBuilder::bind_input`].
    pub fn bind_output(&mut self, bind: OutputBind) -> Result<&mut Self, TieError> {
        let states = self.ext.states.clone();
        let p = self.pending();
        let n_outputs = p.graph.output_count();
        if p.outputs.len() >= n_outputs {
            return Err(TieError::OutputBindingCount {
                inst: p.name.clone(),
                expected: n_outputs,
                got: p.outputs.len() + 1,
            });
        }
        match bind {
            OutputBind::Gpr => {
                if p.outputs.iter().any(|o| o.writes_gpr()) {
                    return Err(TieError::DuplicateBinding {
                        inst: p.name.clone(),
                        binding: "GPR write",
                    });
                }
            }
            OutputBind::State(id) => {
                let state = states.get(id.index()).ok_or(TieError::UnknownState {
                    inst: p.name.clone(),
                    index: id.index(),
                })?;
                if p.outputs.contains(&OutputBind::State(id)) {
                    return Err(TieError::DuplicateBinding {
                        inst: p.name.clone(),
                        binding: "state write",
                    });
                }
                // Width check against the producing node happens in build();
                // here we can check directly since outputs are positional.
                let _ = state;
            }
        }
        p.outputs.push(bind);
        Ok(self)
    }

    /// Overrides the compiler-derived latency (cycles, ≥ 1).
    ///
    /// # Errors
    ///
    /// Returns [`TieError::ZeroLatency`] for `cycles == 0`.
    pub fn latency(&mut self, cycles: u8) -> Result<&mut Self, TieError> {
        let p = self.pending();
        if cycles == 0 {
            return Err(TieError::ZeroLatency {
                inst: p.name.clone(),
            });
        }
        p.latency_override = Some(cycles);
        Ok(self)
    }
}

fn compile_inst(
    pending: PendingInst,
    id: CustomId,
    states: &[StateReg],
) -> Result<CompiledInst, TieError> {
    let PendingInst {
        name,
        graph,
        inputs,
        outputs,
        latency_override,
    } = pending;

    if inputs.len() != graph.input_count() {
        return Err(TieError::InputBindingCount {
            inst: name,
            expected: graph.input_count(),
            got: inputs.len(),
        });
    }
    if outputs.len() != graph.output_count() {
        return Err(TieError::OutputBindingCount {
            inst: name,
            expected: graph.output_count(),
            got: outputs.len(),
        });
    }
    // `GprT` without `GprS` would leave the assembler's positional operand
    // scheme ambiguous.
    let has_s = inputs.contains(&InputBind::GprS);
    let has_t = inputs.contains(&InputBind::GprT);
    if has_t && !has_s {
        return Err(TieError::DuplicateBinding {
            inst: name,
            binding: "GprT without GprS",
        });
    }

    // Latency from the critical path (or designer override).
    let op_nodes = graph.op_nodes();
    let mut depth = vec![0.0f64; graph.node_count()];
    let mut max_depth = 0.0f64;
    for info in &op_nodes {
        let input_depth = info
            .inputs
            .iter()
            .map(|i| depth[i.index()])
            .fold(0.0f64, f64::max);
        let d = input_depth + levels(info.op);
        depth[info.id.index()] = d;
        max_depth = max_depth.max(d);
    }
    let derived = ((max_depth / LEVELS_PER_CYCLE).ceil() as u8).max(1);
    let latency = latency_override.unwrap_or(derived);

    // Per-execution resource vector over the ten categories: combinational
    // components contribute f(C) per activation; custom-register reads and
    // writes contribute f(width) each.
    let mut resources = [0.0f64; 10];
    let mut resource_counts = [0.0f64; 10];
    for info in &op_nodes {
        resources[info.category.index()] += info.complexity();
        resource_counts[info.category.index()] += 1.0;
    }
    let mut state_accesses = 0usize;
    for bind in &inputs {
        if let InputBind::State(sid) = bind {
            let w = states[sid.index()].width;
            resources[Category::CustomReg.index()] += Category::CustomReg.complexity(w, 0);
            resource_counts[Category::CustomReg.index()] += 1.0;
            state_accesses += 1;
        }
    }
    for bind in &outputs {
        if let OutputBind::State(sid) = bind {
            let w = states[sid.index()].width;
            resources[Category::CustomReg.index()] += Category::CustomReg.complexity(w, 0);
            resource_counts[Category::CustomReg.index()] += 1.0;
            state_accesses += 1;
        }
    }

    let uses_gpr = has_s || has_t || outputs.iter().any(|o| o.writes_gpr());
    // Decoder / bypass / interlock control overhead scales with the size of
    // the custom datapath (the TIE compiler generates this logic).
    let control_complexity = 1.0 + 0.08 * op_nodes.len() as f64 + 0.15 * state_accesses as f64;

    Ok(CompiledInst {
        name,
        id,
        graph,
        inputs,
        outputs,
        latency,
        uses_gpr,
        resources,
        resource_counts,
        control_complexity,
    })
}

/// Result of executing one custom instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CustomExecOutcome {
    /// Value written to the GPR destination, if the instruction writes one.
    pub gpr: Option<u64>,
    /// Value of every dataflow node (for switching-energy analysis).
    pub node_values: Vec<u64>,
    /// State registers read: `(id, value)`.
    pub state_reads: Vec<(StateId, u64)>,
    /// State registers written: `(id, old, new)`.
    pub state_writes: Vec<(StateId, u64, u64)>,
}

/// A custom instruction after TIE compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledInst {
    name: String,
    id: CustomId,
    graph: DfGraph,
    inputs: Vec<InputBind>,
    outputs: Vec<OutputBind>,
    latency: u8,
    uses_gpr: bool,
    resources: [f64; 10],
    resource_counts: [f64; 10],
    control_complexity: f64,
}

impl CompiledInst {
    /// Assembly mnemonic.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Identifier within the extension set.
    pub fn id(&self) -> CustomId {
        self.id
    }

    /// Execution latency in cycles (≥ 1).
    pub fn latency(&self) -> u8 {
        self.latency
    }

    /// `true` if the instruction reads or writes the base register file —
    /// the executions counted by the macro-model's side-effect variable
    /// `n_CI`.
    pub fn uses_gpr(&self) -> bool {
        self.uses_gpr
    }

    /// Per-execution activation of each hardware-library category,
    /// pre-weighted by the complexity function `f(C)` (indexed by
    /// [`Category::index`]).
    pub fn resource_vector(&self) -> &[f64; 10] {
        &self.resources
    }

    /// Raw per-execution component activations per category, without the
    /// `f(C)` complexity weighting (for ablation studies of the bit-width
    /// model).
    pub fn resource_counts(&self) -> &[f64; 10] {
        &self.resource_counts
    }

    /// Relative size of the auto-generated decoder/bypass/interlock control
    /// logic for this instruction.
    pub fn control_complexity(&self) -> f64 {
        self.control_complexity
    }

    /// The underlying dataflow graph.
    pub fn graph(&self) -> &DfGraph {
        &self.graph
    }

    /// Input bindings, in graph-input order.
    pub fn input_binds(&self) -> &[InputBind] {
        &self.inputs
    }

    /// Output bindings, in graph-output order.
    pub fn output_binds(&self) -> &[OutputBind] {
        &self.outputs
    }

    /// Operand signature for the assembler.
    pub fn signature(&self) -> CustomSignature {
        CustomSignature {
            gpr_reads: u8::from(self.inputs.contains(&InputBind::GprS))
                + u8::from(self.inputs.contains(&InputBind::GprT)),
            writes_gpr: self.outputs.iter().any(|o| o.writes_gpr()),
            has_imm: self.inputs.contains(&InputBind::Imm),
        }
    }

    /// Executes the instruction.
    ///
    /// `rs`/`rt` are the GPR operand values, `imm` the immediate field, and
    /// `state` the extension's state vector (updated in place).
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`]s from graph evaluation (these indicate an
    /// internal inconsistency, since compilation validated the bindings).
    ///
    /// # Panics
    ///
    /// Panics if `state` is shorter than the extension's state vector.
    pub fn execute(
        &self,
        rs: u32,
        rt: u32,
        imm: i32,
        state: &mut [u64],
    ) -> Result<CustomExecOutcome, GraphError> {
        let mut state_reads = Vec::new();
        let input_values: Vec<u64> = self
            .inputs
            .iter()
            .map(|bind| match bind {
                InputBind::GprS => u64::from(rs),
                InputBind::GprT => u64::from(rt),
                InputBind::Imm => imm as u32 as u64,
                InputBind::State(id) => {
                    let v = state[id.index()];
                    state_reads.push((*id, v));
                    v
                }
            })
            .collect();
        let result = self.graph.eval(&input_values)?;
        let mut gpr = None;
        let mut state_writes = Vec::new();
        for (bind, &value) in self.outputs.iter().zip(result.outputs()) {
            match bind {
                OutputBind::Gpr => gpr = Some(value),
                OutputBind::State(id) => {
                    let old = state[id.index()];
                    state[id.index()] = value;
                    state_writes.push((*id, old, value));
                }
            }
        }
        Ok(CustomExecOutcome {
            gpr,
            node_values: result.node_values().to_vec(),
            state_reads,
            state_writes,
        })
    }

    /// Allocation-free execution for the simulator hot path.
    ///
    /// Evaluates the instruction into the reusable `values` buffer (one
    /// entry per dataflow node, readable afterwards for switching-energy
    /// analysis), updates `state` in place, and returns the GPR result if
    /// the instruction writes one.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`]s from graph evaluation.
    ///
    /// # Panics
    ///
    /// Panics if `state` is shorter than the extension's state vector or
    /// the instruction has more than 16 inputs.
    pub fn execute_into(
        &self,
        rs: u32,
        rt: u32,
        imm: i32,
        state: &mut [u64],
        values: &mut Vec<u64>,
    ) -> Result<Option<u64>, GraphError> {
        let mut input_values = [0u64; 16];
        assert!(
            self.inputs.len() <= 16,
            "custom instruction with >16 inputs"
        );
        for (slot, bind) in input_values.iter_mut().zip(&self.inputs) {
            *slot = match bind {
                InputBind::GprS => u64::from(rs),
                InputBind::GprT => u64::from(rt),
                InputBind::Imm => imm as u32 as u64,
                InputBind::State(id) => state[id.index()],
            };
        }
        self.graph
            .eval_into(&input_values[..self.inputs.len()], values)?;
        let mut gpr = None;
        for (bind, &out_id) in self.outputs.iter().zip(self.graph.output_ids()) {
            let value = values[out_id.index()];
            match bind {
                OutputBind::Gpr => gpr = Some(value),
                OutputBind::State(id) => state[id.index()] = value,
            }
        }
        Ok(gpr)
    }
}

/// A compiled extension: custom state registers plus custom instructions.
///
/// This is the paper's "enhanced processor" configuration artifact: the
/// simulator executes it directly, the assembler imports its mnemonics,
/// and the energy estimators read its resource descriptions.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtensionSet {
    name: String,
    states: Vec<StateReg>,
    insts: Vec<CompiledInst>,
}

impl ExtensionSet {
    /// The empty extension set (a pure base-processor configuration).
    pub fn empty() -> Self {
        ExtensionSet {
            name: "base".to_owned(),
            states: Vec::new(),
            insts: Vec::new(),
        }
    }

    /// Extension name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared state registers.
    pub fn states(&self) -> &[StateReg] {
        &self.states
    }

    /// Number of custom instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` if the set holds no custom instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Looks an instruction up by id.
    pub fn get(&self, id: CustomId) -> Option<&CompiledInst> {
        self.insts.get(id.0 as usize)
    }

    /// Looks an instruction up by mnemonic.
    pub fn by_name(&self, name: &str) -> Option<&CompiledInst> {
        self.insts.iter().find(|i| i.name == name)
    }

    /// Iterates over the compiled instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, CompiledInst> {
        self.insts.iter()
    }

    /// Initial (zero) state vector for simulation.
    pub fn initial_state(&self) -> Vec<u64> {
        vec![0; self.states.len()]
    }

    /// Registers every instruction's mnemonic with an assembler.
    pub fn register_mnemonics(&self, assembler: &mut Assembler) {
        for inst in &self.insts {
            assembler.register_custom(inst.name.clone(), inst.id, inst.signature());
        }
    }

    /// Total instantiated custom-hardware complexity per category
    /// (for leakage modeling): the *union* of all instructions' component
    /// instances plus the state registers.
    pub fn instantiated_complexity(&self) -> [f64; 10] {
        let mut total = [0.0f64; 10];
        for inst in &self.insts {
            for info in inst.graph.op_nodes() {
                total[info.category.index()] += info.complexity();
            }
            total[Category::CustomReg.index()] += 0.0; // states counted below
        }
        for s in &self.states {
            total[Category::CustomReg.index()] += Category::CustomReg.complexity(s.width, 0);
        }
        total
    }

    /// Aggregate decoder/control complexity of the extension.
    pub fn control_complexity(&self) -> f64 {
        self.insts.iter().map(|i| i.control_complexity).sum()
    }

    /// Builds a new extension set from selected instructions of existing
    /// sets, re-running the TIE compiler over their graphs.
    ///
    /// `picks` lists `(source set, instruction names to keep)`; the new
    /// set contains the picked instructions in listing order, so their
    /// [`CustomId`]s are their positions in that order (resolve them with
    /// [`ExtensionSet::by_name`]). State registers are unified **by
    /// name**: two picked instructions whose sources both declare a state
    /// `acc` of the same width share one `acc` in the composed set. This
    /// is what lets a discovered instruction that accumulates into `acc`
    /// coexist with the hand-written `rdacc` that reads it.
    ///
    /// # Errors
    ///
    /// [`TieError::DuplicateInstName`] if two picks share a mnemonic,
    /// [`TieError::DuplicateStateName`] if two sources declare states of
    /// the same name but different widths, and any compile error the
    /// original instruction would raise (none, in practice, since the
    /// graphs and bindings were already compiled once).
    pub fn compose(
        name: impl Into<String>,
        picks: &[(&ExtensionSet, &[&str])],
    ) -> Result<ExtensionSet, TieError> {
        let mut builder = ExtensionBuilder::new(name);
        // Composed state name → (id, width). First reference declares.
        let mut state_ids: BTreeMap<String, (StateId, u8)> = BTreeMap::new();
        let declare = |builder: &mut ExtensionBuilder,
                       state_ids: &mut BTreeMap<String, (StateId, u8)>,
                       src: &StateReg|
         -> Result<StateId, TieError> {
            if let Some(&(id, width)) = state_ids.get(&src.name) {
                if width != src.width {
                    return Err(TieError::DuplicateStateName(src.name.clone()));
                }
                return Ok(id);
            }
            let id = builder.state(src.name.clone(), src.width)?;
            state_ids.insert(src.name.clone(), (id, src.width));
            Ok(id)
        };
        for (source, names) in picks {
            for inst_name in *names {
                let inst = source
                    .by_name(inst_name)
                    .unwrap_or_else(|| panic!("compose: `{inst_name}` not in source set"));
                let mut b = builder.instruction(inst.name.clone(), inst.graph.clone())?;
                for bind in &inst.inputs {
                    let bind = match bind {
                        InputBind::State(sid) => InputBind::State(declare(
                            b.ext,
                            &mut state_ids,
                            &source.states[sid.index()],
                        )?),
                        other => *other,
                    };
                    b.bind_input(bind)?;
                }
                for bind in &inst.outputs {
                    let bind = match bind {
                        OutputBind::State(sid) => OutputBind::State(declare(
                            b.ext,
                            &mut state_ids,
                            &source.states[sid.index()],
                        )?),
                        other => *other,
                    };
                    b.bind_output(bind)?;
                }
                b.latency(inst.latency)?;
            }
        }
        builder.build()
    }
}

impl<'a> IntoIterator for &'a ExtensionSet {
    type Item = &'a CompiledInst;
    type IntoIter = std::slice::Iter<'a, CompiledInst>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Summary of custom-instruction names to ids, useful for diagnostics.
pub(crate) fn _name_map(set: &ExtensionSet) -> BTreeMap<&str, CustomId> {
    set.iter().map(|i| (i.name(), i.id())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use emx_hwlib::LookupTable;

    /// Builds `mac` (a*b+acc → acc, 16×16 over a 40-bit accumulator) and
    /// `rdacc` (acc low 32 bits → GPR).
    fn mac_extension() -> ExtensionSet {
        let mut ext = ExtensionBuilder::new("mac16");
        let acc = ext.state("acc", 40).unwrap();

        let mut g = DfGraph::new();
        let a = g.input("a", 16);
        let b = g.input("b", 16);
        let acc_in = g.input("acc", 40);
        let mac = g.node(PrimOp::TieMac, 40, &[a, b, acc_in]).unwrap();
        g.output(mac);
        ext.instruction("mac", g)
            .unwrap()
            .bind_input(InputBind::GprS)
            .unwrap()
            .bind_input(InputBind::GprT)
            .unwrap()
            .bind_input(InputBind::State(acc))
            .unwrap()
            .bind_output(OutputBind::State(acc))
            .unwrap();

        let mut g2 = DfGraph::new();
        let acc_in = g2.input("acc", 40);
        let k = g2.constant(0, 6).unwrap();
        let low = g2.node(PrimOp::Shr, 32, &[acc_in, k]).unwrap();
        g2.output(low);
        ext.instruction("rdacc", g2)
            .unwrap()
            .bind_input(InputBind::State(acc))
            .unwrap()
            .bind_output(OutputBind::Gpr)
            .unwrap();

        ext.build().unwrap()
    }

    #[test]
    fn mac_extension_compiles_and_executes() {
        let set = mac_extension();
        assert_eq!(set.len(), 2);
        let mac = set.by_name("mac").unwrap();
        assert!(mac.uses_gpr()); // reads rs/rt
        assert_eq!(mac.signature().gpr_reads, 2);
        assert!(!mac.signature().writes_gpr);

        let mut state = set.initial_state();
        mac.execute(100, 200, 0, &mut state).unwrap();
        mac.execute(3, 4, 0, &mut state).unwrap();
        assert_eq!(state[0], 20012);

        let rd = set.by_name("rdacc").unwrap();
        let out = rd.execute(0, 0, 0, &mut state).unwrap();
        assert_eq!(out.gpr, Some(20012));
        assert_eq!(out.state_reads, vec![(StateId(0), 20012)]);
    }

    #[test]
    fn latency_derivation() {
        let set = mac_extension();
        // TieMac = 3 levels → ceil(3/2) = 2 cycles.
        assert_eq!(set.by_name("mac").unwrap().latency(), 2);
        // A single shift: 1.2 levels → 1 cycle.
        assert_eq!(set.by_name("rdacc").unwrap().latency(), 1);
    }

    #[test]
    fn latency_override() {
        let mut ext = ExtensionBuilder::new("x");
        let mut g = DfGraph::new();
        let a = g.input("a", 8);
        let n = g.node(PrimOp::Not, 8, &[a]).unwrap();
        g.output(n);
        ext.instruction("inv", g)
            .unwrap()
            .bind_input(InputBind::GprS)
            .unwrap()
            .bind_output(OutputBind::Gpr)
            .unwrap()
            .latency(4)
            .unwrap();
        let set = ext.build().unwrap();
        assert_eq!(set.by_name("inv").unwrap().latency(), 4);
    }

    #[test]
    fn resource_vector_counts_categories() {
        let set = mac_extension();
        let mac = set.by_name("mac").unwrap();
        let rv = mac.resource_vector();
        // TIE mac instance of operand width 16: f = (16/32)² = 0.25.
        assert!((rv[Category::TieMac.index()] - 0.25).abs() < 1e-12);
        // acc read + acc write: 2 × f(40) = 2 × 40/32.
        assert!((rv[Category::CustomReg.index()] - 2.0 * 40.0 / 32.0).abs() < 1e-12);
        assert_eq!(rv[Category::Multiplier.index()], 0.0);
    }

    #[test]
    fn validation_errors() {
        // Unbound input at build time.
        let mut ext = ExtensionBuilder::new("bad");
        let mut g = DfGraph::new();
        g.input("a", 8);
        let ab = g.input("b", 8);
        g.output(ab);
        ext.instruction("i1", g)
            .unwrap()
            .bind_input(InputBind::GprS)
            .unwrap();
        assert!(matches!(
            ext.build(),
            Err(TieError::InputBindingCount {
                expected: 2,
                got: 1,
                ..
            })
        ));

        // Base-mnemonic collision.
        let mut ext = ExtensionBuilder::new("bad2");
        assert!(matches!(
            ext.instruction("add", DfGraph::new()),
            Err(TieError::BadInstName(_))
        ));

        // Unknown state.
        let mut ext = ExtensionBuilder::new("bad3");
        let mut g = DfGraph::new();
        let a = g.input("a", 8);
        g.output(a);
        let mut b = ext.instruction("i2", g).unwrap();
        assert!(matches!(
            b.bind_input(InputBind::State(StateId(5))),
            Err(TieError::UnknownState { index: 5, .. })
        ));

        // Width mismatch on a state binding.
        let mut ext = ExtensionBuilder::new("bad4");
        let s = ext.state("s", 16).unwrap();
        let mut g = DfGraph::new();
        let a = g.input("a", 8);
        g.output(a);
        let mut b = ext.instruction("i3", g).unwrap();
        assert!(matches!(
            b.bind_input(InputBind::State(s)),
            Err(TieError::StateWidthMismatch {
                state_width: 16,
                port_width: 8,
                ..
            })
        ));

        // Port wider than the operand bus.
        let mut ext = ExtensionBuilder::new("bad5");
        let mut g = DfGraph::new();
        let a = g.input("a", 48);
        g.output(a);
        let mut b = ext.instruction("i4", g).unwrap();
        assert!(matches!(
            b.bind_input(InputBind::GprS),
            Err(TieError::PortTooWide { width: 48, .. })
        ));

        // Two GPR writes.
        let mut ext = ExtensionBuilder::new("bad6");
        let mut g = DfGraph::new();
        let a = g.input("a", 8);
        g.output(a);
        g.output(a);
        let mut b = ext.instruction("i5", g).unwrap();
        b.bind_input(InputBind::GprS).unwrap();
        b.bind_output(OutputBind::Gpr).unwrap();
        assert!(matches!(
            b.bind_output(OutputBind::Gpr),
            Err(TieError::DuplicateBinding {
                binding: "GPR write",
                ..
            })
        ));

        // Duplicate names.
        let mut ext = ExtensionBuilder::new("bad7");
        assert!(ext.state("s", 8).is_ok());
        assert!(matches!(
            ext.state("s", 8),
            Err(TieError::DuplicateStateName(_))
        ));
    }

    #[test]
    fn table_instruction() {
        let mut ext = ExtensionBuilder::new("tab");
        let mut g = DfGraph::new();
        let a = g.input("a", 8);
        let t = g.add_table(LookupTable::new((0..16).map(|i| i * i).collect(), 8).unwrap());
        let o = g
            .node(PrimOp::TableLookup { table_index: t }, 8, &[a])
            .unwrap();
        g.output(o);
        ext.instruction("sq", g)
            .unwrap()
            .bind_input(InputBind::GprS)
            .unwrap()
            .bind_output(OutputBind::Gpr)
            .unwrap();
        let set = ext.build().unwrap();
        let sq = set.by_name("sq").unwrap();
        let mut st = set.initial_state();
        assert_eq!(sq.execute(7, 0, 0, &mut st).unwrap().gpr, Some(49));
        assert!(sq.resource_vector()[Category::Table.index()] > 0.0);
    }

    #[test]
    fn empty_set() {
        let set = ExtensionSet::empty();
        assert!(set.is_empty());
        assert_eq!(set.initial_state(), Vec::<u64>::new());
        assert_eq!(set.get(CustomId(0)), None);
    }

    #[test]
    fn instantiated_complexity_includes_states() {
        let set = mac_extension();
        let total = set.instantiated_complexity();
        assert!((total[Category::CustomReg.index()] - 40.0 / 32.0).abs() < 1e-12);
        assert!(total[Category::TieMac.index()] > 0.0);
        assert!(set.control_complexity() > 2.0);
    }

    #[test]
    fn mnemonic_registration() {
        let set = mac_extension();
        let mut asm = Assembler::new();
        set.register_mnemonics(&mut asm);
        let p = asm.assemble("mac a2, a3\nrdacc a4\nhalt\n").unwrap();
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn gprt_requires_gprs() {
        let mut ext = ExtensionBuilder::new("bad8");
        let mut g = DfGraph::new();
        let a = g.input("a", 8);
        g.output(a);
        ext.instruction("i6", g)
            .unwrap()
            .bind_input(InputBind::GprT)
            .unwrap()
            .bind_output(OutputBind::Gpr)
            .unwrap();
        assert!(ext.build().is_err());
    }
}
