//! Custom-instruction extension framework for the emx processor — the
//! reproduction's stand-in for Tensilica's TIE language and TIE compiler.
//!
//! In the paper, "extensibility is achieved by specifying
//! application-specific functionality through custom instructions (TIE)",
//! whose behaviour is described in a Verilog subset; "the TIE compiler
//! processes the custom instruction specification and facilitates seamless
//! integration of the added custom hardware with the base processor",
//! automatically generating decoder, bypass and interlock logic.
//!
//! Here the designer describes each custom instruction as a
//! [`emx_hwlib::DfGraph`] over the hardware primitive library, binds the
//! graph's inputs and outputs to GPR operands, immediates and custom
//! state registers, and hands the set to the [`ExtensionBuilder`], which:
//!
//! * validates bindings and widths,
//! * derives the instruction's **latency** from the critical path of the
//!   graph (multi-cycle custom instructions, as in the paper's Fig. 1),
//! * derives **decoder/control overhead** from the size of the extension,
//! * precomputes the per-execution **resource-usage vector** over the ten
//!   hardware-library categories — the inputs to the structural
//!   macro-model variables,
//! * produces an [`ExtensionSet`] that the simulator executes directly and
//!   the assembler can register mnemonics from.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use emx_hwlib::{DfGraph, PrimOp};
//! use emx_tie::{ExtensionBuilder, InputBind, OutputBind};
//!
//! let mut g = DfGraph::new();
//! let a = g.input("a", 8);
//! let b = g.input("b", 8);
//! let sum = g.node(PrimOp::Add, 8, &[a, b])?;
//! g.output(sum);
//!
//! let mut ext = ExtensionBuilder::new("demo");
//! ext.instruction("add8", g)?
//!     .bind_input(InputBind::GprS)?
//!     .bind_input(InputBind::GprT)?
//!     .bind_output(OutputBind::Gpr)?;
//! let set = ext.build()?;
//! assert_eq!(set.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compile;
mod error;
pub mod lang;
mod spec;

pub use compile::{CompiledInst, CustomExecOutcome, ExtensionBuilder, ExtensionSet, InstBuilder};
pub use error::TieError;
pub use spec::{InputBind, OutputBind, StateId, StateReg};
