use std::error::Error;
use std::fmt;

use emx_hwlib::GraphError;

/// Errors produced by the extension (TIE) compiler.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TieError {
    /// More input bindings were supplied than the graph has inputs, or
    /// `build` found unbound inputs.
    InputBindingCount {
        /// Instruction name.
        inst: String,
        /// Graph inputs.
        expected: usize,
        /// Bindings supplied.
        got: usize,
    },
    /// Output-binding count does not match the graph's outputs.
    OutputBindingCount {
        /// Instruction name.
        inst: String,
        /// Graph outputs.
        expected: usize,
        /// Bindings supplied.
        got: usize,
    },
    /// An operand binding was repeated (two inputs bound to `GprS`, two
    /// outputs bound to `Gpr`, …).
    DuplicateBinding {
        /// Instruction name.
        inst: String,
        /// Human-readable description of the duplicated binding.
        binding: &'static str,
    },
    /// A GPR-bound graph port is wider than the 32-bit operand bus.
    PortTooWide {
        /// Instruction name.
        inst: String,
        /// The port's width in bits.
        width: u8,
    },
    /// A binding referenced a state register not declared in the extension.
    UnknownState {
        /// Instruction name.
        inst: String,
        /// The dangling state index.
        index: usize,
    },
    /// A state binding's width does not match the state register's width.
    StateWidthMismatch {
        /// Instruction name.
        inst: String,
        /// The state register's name.
        state: String,
        /// The state register's declared width.
        state_width: u8,
        /// The graph port's width.
        port_width: u8,
    },
    /// Two instructions in the same extension share a name.
    DuplicateInstName(String),
    /// Two state registers in the same extension share a name.
    DuplicateStateName(String),
    /// An explicit latency override of zero cycles.
    ZeroLatency {
        /// Instruction name.
        inst: String,
    },
    /// An instruction name that is not a valid assembly identifier or
    /// collides with a base-ISA mnemonic.
    BadInstName(String),
    /// The underlying dataflow graph was invalid.
    Graph(GraphError),
}

impl fmt::Display for TieError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TieError::InputBindingCount { inst, expected, got } => write!(
                f,
                "instruction `{inst}`: graph has {expected} inputs but {got} bindings"
            ),
            TieError::OutputBindingCount { inst, expected, got } => write!(
                f,
                "instruction `{inst}`: graph has {expected} outputs but {got} bindings"
            ),
            TieError::DuplicateBinding { inst, binding } => {
                write!(f, "instruction `{inst}`: duplicate {binding} binding")
            }
            TieError::PortTooWide { inst, width } => write!(
                f,
                "instruction `{inst}`: GPR-bound port of {width} bits exceeds the 32-bit operand bus"
            ),
            TieError::UnknownState { inst, index } => {
                write!(f, "instruction `{inst}`: unknown state register #{index}")
            }
            TieError::StateWidthMismatch { inst, state, state_width, port_width } => write!(
                f,
                "instruction `{inst}`: state `{state}` is {state_width} bits but the port is {port_width}"
            ),
            TieError::DuplicateInstName(n) => write!(f, "duplicate instruction name `{n}`"),
            TieError::DuplicateStateName(n) => write!(f, "duplicate state name `{n}`"),
            TieError::ZeroLatency { inst } => {
                write!(f, "instruction `{inst}`: latency must be at least one cycle")
            }
            TieError::BadInstName(n) => write!(f, "bad instruction name `{n}`"),
            TieError::Graph(e) => write!(f, "dataflow graph error: {e}"),
        }
    }
}

impl Error for TieError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TieError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for TieError {
    fn from(e: GraphError) -> Self {
        TieError::Graph(e)
    }
}
