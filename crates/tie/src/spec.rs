use std::fmt;

/// Identifier of a custom state register within an extension set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub(crate) usize);

impl StateId {
    /// Position of the state register in the extension's state vector.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "state#{}", self.0)
    }
}

/// A custom state register declared by an extension.
///
/// The paper: "Custom instructions can access the general-purpose register
/// file of the base processor or additional custom registers/register
/// files for their computations." State registers are the paper's category
/// 5 ("custom registers") hardware; each read or write activates that
/// category for one cycle.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StateReg {
    pub(crate) name: String,
    pub(crate) width: u8,
}

impl StateReg {
    /// The register's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The register's width in bits (1..=64).
    pub fn width(&self) -> u8 {
        self.width
    }
}

/// Where a graph input gets its value when the instruction executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputBind {
    /// The first GPR source operand (`rs`), driven by operand bus A.
    GprS,
    /// The second GPR source operand (`rt`), driven by operand bus B.
    GprT,
    /// The instruction's immediate field.
    Imm,
    /// A custom state register read.
    State(StateId),
}

impl InputBind {
    /// `true` if this binding reads the base processor's register file.
    pub fn reads_gpr(self) -> bool {
        matches!(self, InputBind::GprS | InputBind::GprT)
    }
}

/// Where a graph output goes when the instruction completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutputBind {
    /// The GPR destination operand (`rd`), driven onto the result bus.
    Gpr,
    /// A custom state register write.
    State(StateId),
}

impl OutputBind {
    /// `true` if this binding writes the base processor's register file.
    pub fn writes_gpr(self) -> bool {
        matches!(self, OutputBind::Gpr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpr_predicates() {
        assert!(InputBind::GprS.reads_gpr());
        assert!(InputBind::GprT.reads_gpr());
        assert!(!InputBind::Imm.reads_gpr());
        assert!(!InputBind::State(StateId(0)).reads_gpr());
        assert!(OutputBind::Gpr.writes_gpr());
        assert!(!OutputBind::State(StateId(0)).writes_gpr());
    }

    #[test]
    fn state_id_display() {
        assert_eq!(StateId(3).to_string(), "state#3");
        assert_eq!(StateId(3).index(), 3);
    }
}
