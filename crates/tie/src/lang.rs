//! A textual TIE-like description language.
//!
//! The paper's extensions are written in the TIE language and processed by
//! the TIE compiler. This module provides the equivalent front end: a small
//! hardware-description language that parses to [`ExtensionSet`]s, so
//! extensions can live in `.tie` text files instead of builder code.
//!
//! # Syntax
//!
//! ```text
//! extension mac16 {
//!     state acc : 40;
//!
//!     inst mac(a: gpr(16), b: gpr(16), acc_in: state(acc), out acc_out: state(acc)) {
//!         acc_out : 40 = mac(a, b, acc_in);
//!     }
//!
//!     inst rdacc(acc_in: state(acc), out d: gpr) {
//!         d : 32 = slice(acc_in, 0, 32);
//!     }
//!
//!     inst clracc(out acc_out: state(acc)) {
//!         acc_out : 40 = 0;
//!     }
//! }
//! ```
//!
//! * `state NAME : WIDTH;` declares a custom register.
//! * `table NAME[ENTRIES] : WIDTH = { v, v, … };` declares a lookup table
//!   (usable from any instruction in the extension as `NAME[expr]`).
//! * `inst NAME(params…) [latency N] { stmts… }` declares an instruction.
//!   Input parameters are, in order: `x: gpr(width)` (first GPR input is
//!   operand `rs`, second is `rt`), `x: imm(width)`, `x: state(NAME)`.
//!   Output parameters are `out x: gpr` or `out x: state(NAME)`.
//! * Statements are single assignments `name [: width] = expr;`. Assigning
//!   to an output parameter drives it; assigning to a fresh name introduces
//!   a wire.
//! * Expressions: integer literals, names, parentheses, unary `~`, binary
//!   `* + - << >> & ^ |` (C-like precedence), table indexing `tbl[x]`, and
//!   the function forms `mux(sel, a, b)`, `mac(a, b, c)`, `add3(a, b, c)`,
//!   `csa_sum(a, b, c)`, `csa_carry(a, b, c)`, `redand(x)`, `redor(x)`,
//!   `redxor(x)`, `slice(x, lsb, width)`, `pack(a, b, lsb)`, `ltu(a, b)`,
//!   `lts(a, b)`, `eq(a, b)`, `minu(a, b)`, `maxu(a, b)`, `tmul(a, b)`.
//! * Result widths are inferred (max of operand widths; products widen) and
//!   can be pinned per assignment with `name : width = …`.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let set = emx_tie::lang::parse_extension(
//!     "extension demo {
//!         inst addsat(a: gpr(8), b: gpr(8), out d: gpr) {
//!             s : 9 = a + b;
//!             over = ltu(255, s);
//!             d : 8 = mux(over, 255, s);
//!         }
//!     }",
//! )?;
//! let inst = set.by_name("addsat").ok_or("addsat not declared")?;
//! let mut state = set.initial_state();
//! assert_eq!(inst.execute(200, 100, 0, &mut state)?.gpr, Some(255));
//! assert_eq!(inst.execute(3, 4, 0, &mut state)?.gpr, Some(7));
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use emx_hwlib::{DfGraph, LookupTable, NodeId, PrimOp};

use crate::{ExtensionBuilder, ExtensionSet, InputBind, OutputBind, StateId};

/// Error produced while parsing or elaborating a TIE-language source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl LangError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        LangError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for LangError {}

// --------------------------------------------------------------------------
// Lexer
// --------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(u64),
    Punct(char),
    Shl,
    Shr,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "`{v}`"),
            Tok::Punct(c) => write!(f, "`{c}`"),
            Tok::Shl => write!(f, "`<<`"),
            Tok::Shr => write!(f, "`>>`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

struct Lexer {
    tokens: Vec<(Tok, usize)>,
    pos: usize,
}

impl Lexer {
    fn new(src: &str) -> Result<Self, LangError> {
        let mut tokens = Vec::new();
        let mut line = 1usize;
        let mut chars = src.chars().peekable();
        while let Some(&c) = chars.peek() {
            match c {
                '\n' => {
                    line += 1;
                    chars.next();
                }
                c if c.is_whitespace() => {
                    chars.next();
                }
                '/' => {
                    chars.next();
                    if chars.peek() == Some(&'/') {
                        for c in chars.by_ref() {
                            if c == '\n' {
                                line += 1;
                                break;
                            }
                        }
                    } else {
                        return Err(LangError::new(line, "unexpected `/`"));
                    }
                }
                '#' => {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let mut ident = String::new();
                    while let Some(&c) = chars.peek() {
                        if c.is_ascii_alphanumeric() || c == '_' {
                            ident.push(c);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    tokens.push((Tok::Ident(ident), line));
                }
                c if c.is_ascii_digit() => {
                    let mut text = String::new();
                    while let Some(&c) = chars.peek() {
                        if c.is_ascii_alphanumeric() || c == '_' {
                            text.push(c);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    let cleaned = text.replace('_', "");
                    let value = if let Some(hex) = cleaned
                        .strip_prefix("0x")
                        .or_else(|| cleaned.strip_prefix("0X"))
                    {
                        u64::from_str_radix(hex, 16)
                    } else if let Some(bin) = cleaned
                        .strip_prefix("0b")
                        .or_else(|| cleaned.strip_prefix("0B"))
                    {
                        u64::from_str_radix(bin, 2)
                    } else {
                        cleaned.parse()
                    }
                    .map_err(|_| LangError::new(line, format!("bad number `{text}`")))?;
                    tokens.push((Tok::Int(value), line));
                }
                '<' => {
                    chars.next();
                    if chars.peek() == Some(&'<') {
                        chars.next();
                        tokens.push((Tok::Shl, line));
                    } else {
                        return Err(LangError::new(
                            line,
                            "`<` is not an operator; use ltu()/lts()",
                        ));
                    }
                }
                '>' => {
                    chars.next();
                    if chars.peek() == Some(&'>') {
                        chars.next();
                        tokens.push((Tok::Shr, line));
                    } else {
                        return Err(LangError::new(
                            line,
                            "`>` is not an operator; use ltu()/lts()",
                        ));
                    }
                }
                '{' | '}' | '(' | ')' | '[' | ']' | ',' | ';' | ':' | '=' | '+' | '-' | '*'
                | '&' | '|' | '^' | '~' => {
                    tokens.push((Tok::Punct(c), line));
                    chars.next();
                }
                other => {
                    return Err(LangError::new(
                        line,
                        format!("unexpected character `{other}`"),
                    ))
                }
            }
        }
        let last = tokens.last().map_or(line, |(_, l)| *l);
        tokens.push((Tok::Eof, last));
        Ok(Lexer { tokens, pos: 0 })
    }

    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].0
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].1
    }

    fn next(&mut self) -> Tok {
        let t = self.tokens[self.pos].0.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect_punct(&mut self, c: char) -> Result<(), LangError> {
        if self.peek() == &Tok::Punct(c) {
            self.next();
            Ok(())
        } else {
            Err(LangError::new(
                self.line(),
                format!("expected `{c}`, found {}", self.peek()),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<String, LangError> {
        match self.next() {
            Tok::Ident(s) => Ok(s),
            other => Err(LangError::new(
                self.line(),
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), LangError> {
        let line = self.line();
        match self.next() {
            Tok::Ident(s) if s == kw => Ok(()),
            other => Err(LangError::new(
                line,
                format!("expected `{kw}`, found {other}"),
            )),
        }
    }

    fn expect_int(&mut self) -> Result<u64, LangError> {
        let line = self.line();
        match self.next() {
            Tok::Int(v) => Ok(v),
            other => Err(LangError::new(
                line,
                format!("expected number, found {other}"),
            )),
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek() == &Tok::Punct(c) {
            self.next();
            true
        } else {
            false
        }
    }
}

// --------------------------------------------------------------------------
// AST
// --------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Expr {
    Lit(u64),
    Name(String),
    Unary(char, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    Call(String, Vec<Expr>),
    Index(String, Box<Expr>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BinOp {
    Mul,
    Add,
    Sub,
    Shl,
    Shr,
    And,
    Xor,
    Or,
}

#[derive(Debug, Clone)]
enum ParamKind {
    GprIn(u8),
    ImmIn(u8),
    StateIn(String),
    GprOut,
    StateOut(String),
}

#[derive(Debug, Clone)]
struct Param {
    name: String,
    kind: ParamKind,
    line: usize,
}

#[derive(Debug, Clone)]
struct Stmt {
    name: String,
    width: Option<u8>,
    expr: Expr,
    line: usize,
}

#[derive(Debug, Clone)]
struct InstAst {
    name: String,
    params: Vec<Param>,
    latency: Option<u8>,
    body: Vec<Stmt>,
    line: usize,
}

// --------------------------------------------------------------------------
// Parser
// --------------------------------------------------------------------------

struct Parser {
    lex: Lexer,
}

impl Parser {
    fn parse_expr(&mut self) -> Result<Expr, LangError> {
        self.parse_binary(0)
    }

    /// Precedence climbing: level 0 = `|`, 1 = `^`, 2 = `&`, 3 = shifts,
    /// 4 = `+ -`, 5 = `*`.
    fn parse_binary(&mut self, level: u8) -> Result<Expr, LangError> {
        if level > 5 {
            return self.parse_unary();
        }
        let mut lhs = self.parse_binary(level + 1)?;
        loop {
            let op = match (level, self.lex.peek()) {
                (0, Tok::Punct('|')) => BinOp::Or,
                (1, Tok::Punct('^')) => BinOp::Xor,
                (2, Tok::Punct('&')) => BinOp::And,
                (3, Tok::Shl) => BinOp::Shl,
                (3, Tok::Shr) => BinOp::Shr,
                (4, Tok::Punct('+')) => BinOp::Add,
                (4, Tok::Punct('-')) => BinOp::Sub,
                (5, Tok::Punct('*')) => BinOp::Mul,
                _ => break,
            };
            self.lex.next();
            let rhs = self.parse_binary(level + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, LangError> {
        if self.lex.eat_punct('~') {
            return Ok(Expr::Unary('~', Box::new(self.parse_unary()?)));
        }
        self.parse_atom()
    }

    fn parse_atom(&mut self) -> Result<Expr, LangError> {
        let line = self.lex.line();
        match self.lex.next() {
            Tok::Int(v) => Ok(Expr::Lit(v)),
            Tok::Punct('(') => {
                let e = self.parse_expr()?;
                self.lex.expect_punct(')')?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if self.lex.eat_punct('(') {
                    let mut args = Vec::new();
                    if !self.lex.eat_punct(')') {
                        loop {
                            args.push(self.parse_expr()?);
                            if self.lex.eat_punct(')') {
                                break;
                            }
                            self.lex.expect_punct(',')?;
                        }
                    }
                    Ok(Expr::Call(name, args))
                } else if self.lex.eat_punct('[') {
                    let idx = self.parse_expr()?;
                    self.lex.expect_punct(']')?;
                    Ok(Expr::Index(name, Box::new(idx)))
                } else {
                    Ok(Expr::Name(name))
                }
            }
            other => Err(LangError::new(
                line,
                format!("expected expression, found {other}"),
            )),
        }
    }

    fn parse_param(&mut self) -> Result<Param, LangError> {
        let line = self.lex.line();
        let is_out = matches!(self.lex.peek(), Tok::Ident(s) if s == "out");
        if is_out {
            self.lex.next();
        }
        let name = self.lex.expect_ident()?;
        self.lex.expect_punct(':')?;
        let kind_name = self.lex.expect_ident()?;
        let kind = match (is_out, kind_name.as_str()) {
            (false, "gpr") => {
                let width = if self.lex.eat_punct('(') {
                    let w = self.lex.expect_int()?;
                    self.lex.expect_punct(')')?;
                    w as u8
                } else {
                    32
                };
                ParamKind::GprIn(width)
            }
            (false, "imm") => {
                let width = if self.lex.eat_punct('(') {
                    let w = self.lex.expect_int()?;
                    self.lex.expect_punct(')')?;
                    w as u8
                } else {
                    32
                };
                ParamKind::ImmIn(width)
            }
            (false, "state") => {
                self.lex.expect_punct('(')?;
                let s = self.lex.expect_ident()?;
                self.lex.expect_punct(')')?;
                ParamKind::StateIn(s)
            }
            (true, "gpr") => ParamKind::GprOut,
            (true, "state") => {
                self.lex.expect_punct('(')?;
                let s = self.lex.expect_ident()?;
                self.lex.expect_punct(')')?;
                ParamKind::StateOut(s)
            }
            (out, other) => {
                return Err(LangError::new(
                    line,
                    format!(
                        "unknown {} parameter kind `{other}`",
                        if out { "output" } else { "input" }
                    ),
                ))
            }
        };
        Ok(Param { name, kind, line })
    }

    fn parse_inst(&mut self) -> Result<InstAst, LangError> {
        let line = self.lex.line();
        let name = self.lex.expect_ident()?;
        self.lex.expect_punct('(')?;
        let mut params = Vec::new();
        if !self.lex.eat_punct(')') {
            loop {
                params.push(self.parse_param()?);
                if self.lex.eat_punct(')') {
                    break;
                }
                self.lex.expect_punct(',')?;
            }
        }
        let latency = if matches!(self.lex.peek(), Tok::Ident(s) if s == "latency") {
            self.lex.next();
            Some(self.lex.expect_int()? as u8)
        } else {
            None
        };
        self.lex.expect_punct('{')?;
        let mut body = Vec::new();
        while !self.lex.eat_punct('}') {
            let sline = self.lex.line();
            let name = self.lex.expect_ident()?;
            let width = if self.lex.eat_punct(':') {
                Some(self.lex.expect_int()? as u8)
            } else {
                None
            };
            self.lex.expect_punct('=')?;
            let expr = self.parse_expr()?;
            self.lex.expect_punct(';')?;
            body.push(Stmt {
                name,
                width,
                expr,
                line: sline,
            });
        }
        Ok(InstAst {
            name,
            params,
            latency,
            body,
            line,
        })
    }
}

// --------------------------------------------------------------------------
// Elaboration (AST → DfGraph → ExtensionBuilder)
// --------------------------------------------------------------------------

struct TableDecl {
    entries: Vec<u64>,
    width: u8,
}

struct Elaborator<'a> {
    graph: DfGraph,
    env: HashMap<String, NodeId>,
    tables: &'a HashMap<String, TableDecl>,
    /// Table name → index within `graph` (instantiated lazily so each
    /// instruction only owns the tables it uses).
    table_instances: HashMap<String, usize>,
}

impl Elaborator<'_> {
    fn width_of(&self, id: NodeId) -> u8 {
        self.graph.width(id)
    }

    fn lower(&mut self, expr: &Expr, want: Option<u8>, line: usize) -> Result<NodeId, LangError> {
        let err = |msg: String| LangError::new(line, msg);
        match expr {
            Expr::Lit(v) => {
                let natural = (64 - v.leading_zeros()).max(1) as u8;
                let width = want.unwrap_or(natural);
                if width < natural {
                    return Err(err(format!("literal {v} does not fit {width} bits")));
                }
                self.graph
                    .constant(*v, width)
                    .map_err(|e| err(e.to_string()))
            }
            Expr::Name(name) => {
                let id = *self
                    .env
                    .get(name)
                    .ok_or_else(|| err(format!("unknown name `{name}`")))?;
                match want {
                    Some(w) if w != self.width_of(id) => self
                        .graph
                        .node(PrimOp::Slice { lsb: 0 }, w, &[id])
                        .map_err(|e| err(e.to_string())),
                    _ => Ok(id),
                }
            }
            Expr::Unary('~', inner) => {
                let a = self.lower(inner, None, line)?;
                let w = want.unwrap_or(self.width_of(a));
                self.graph
                    .node(PrimOp::Not, w, &[a])
                    .map_err(|e| err(e.to_string()))
            }
            Expr::Unary(op, _) => Err(err(format!("unknown unary operator `{op}`"))),
            Expr::Binary(op, l, r) => {
                let a = self.lower(l, None, line)?;
                let b = self.lower(r, None, line)?;
                let (wa, wb) = (self.width_of(a), self.width_of(b));
                let (prim, natural) = match op {
                    BinOp::Mul => (PrimOp::Mul, (wa as u16 + wb as u16).min(64) as u8),
                    BinOp::Add => (PrimOp::Add, wa.max(wb).saturating_add(1).min(64)),
                    BinOp::Sub => (PrimOp::Sub, wa.max(wb)),
                    BinOp::Shl => (PrimOp::Shl, wa),
                    BinOp::Shr => (PrimOp::Shr, wa),
                    BinOp::And => (PrimOp::And, wa.max(wb)),
                    BinOp::Xor => (PrimOp::Xor, wa.max(wb)),
                    BinOp::Or => (PrimOp::Or, wa.max(wb)),
                };
                let w = want.unwrap_or(natural);
                self.graph
                    .node(prim, w, &[a, b])
                    .map_err(|e| err(e.to_string()))
            }
            Expr::Index(table, idx) => {
                let decl = self
                    .tables
                    .get(table)
                    .ok_or_else(|| err(format!("unknown table `{table}`")))?;
                let table_index = match self.table_instances.get(table) {
                    Some(&i) => i,
                    None => {
                        let t = LookupTable::new(decl.entries.clone(), decl.width)
                            .map_err(|e| err(e.to_string()))?;
                        let i = self.graph.add_table(t);
                        self.table_instances.insert(table.clone(), i);
                        i
                    }
                };
                let i = self.lower(idx, None, line)?;
                let w = want.unwrap_or(decl.width);
                self.graph
                    .node(PrimOp::TableLookup { table_index }, w, &[i])
                    .map_err(|e| err(e.to_string()))
            }
            Expr::Call(name, args) => self.lower_call(name, args, want, line),
        }
    }

    fn lower_call(
        &mut self,
        name: &str,
        args: &[Expr],
        want: Option<u8>,
        line: usize,
    ) -> Result<NodeId, LangError> {
        let err = |msg: String| LangError::new(line, msg);
        let arity = |n: usize| -> Result<(), LangError> {
            if args.len() != n {
                Err(LangError::new(
                    line,
                    format!("`{name}` takes {n} arguments, found {}", args.len()),
                ))
            } else {
                Ok(())
            }
        };

        // slice/pack take literal positions, handle them first.
        if name == "slice" {
            arity(3)?;
            let x = self.lower(&args[0], None, line)?;
            let (Expr::Lit(lsb), Expr::Lit(width)) = (&args[1], &args[2]) else {
                return Err(err("slice(x, lsb, width) needs literal lsb/width".into()));
            };
            return self
                .graph
                .node(PrimOp::Slice { lsb: *lsb as u8 }, *width as u8, &[x])
                .map_err(|e| err(e.to_string()));
        }
        if name == "pack" {
            arity(3)?;
            let a = self.lower(&args[0], None, line)?;
            let b = self.lower(&args[1], None, line)?;
            let Expr::Lit(lsb) = &args[2] else {
                return Err(err("pack(a, b, lsb) needs a literal lsb".into()));
            };
            let lsb = *lsb as u8;
            let natural = (u16::from(lsb) + u16::from(self.width_of(b))).min(64) as u8;
            let w = want.unwrap_or_else(|| natural.max(self.width_of(a)));
            return self
                .graph
                .node(PrimOp::Pack { lsb }, w, &[a, b])
                .map_err(|e| err(e.to_string()));
        }

        let lowered: Result<Vec<NodeId>, LangError> =
            args.iter().map(|a| self.lower(a, None, line)).collect();
        let inputs = lowered?;
        let max_w = inputs.iter().map(|&i| self.width_of(i)).max().unwrap_or(1);

        let (prim, n, natural) = match name {
            "mux" => (
                PrimOp::Mux,
                3,
                inputs.get(1..).map_or(1, |rest| {
                    rest.iter().map(|&i| self.width_of(i)).max().unwrap_or(1)
                }),
            ),
            "mac" => (PrimOp::TieMac, 3, {
                let wa = inputs.first().map_or(1, |&i| self.width_of(i)) as u16;
                let wb = inputs.get(1).map_or(1, |&i| self.width_of(i)) as u16;
                let wc = inputs.get(2).map_or(1, |&i| self.width_of(i)) as u16;
                (wa + wb).max(wc).min(64) as u8
            }),
            "add3" => (PrimOp::TieAdd, 3, max_w.saturating_add(2).min(64)),
            "csa_sum" => (PrimOp::TieCsaSum, 3, max_w),
            "csa_carry" => (PrimOp::TieCsaCarry, 3, max_w.saturating_add(1).min(64)),
            "tmul" => (
                PrimOp::TieMult,
                2,
                (inputs
                    .iter()
                    .map(|&i| u16::from(self.width_of(i)))
                    .sum::<u16>())
                .min(64) as u8,
            ),
            "redand" => (PrimOp::RedAnd, 1, 1),
            "redor" => (PrimOp::RedOr, 1, 1),
            "redxor" => (PrimOp::RedXor, 1, 1),
            "ltu" => (PrimOp::CmpLtu, 2, 1),
            "lts" => (PrimOp::CmpLts, 2, 1),
            "eq" => (PrimOp::CmpEq, 2, 1),
            "minu" => (PrimOp::MinU, 2, max_w),
            "maxu" => (PrimOp::MaxU, 2, max_w),
            other => return Err(err(format!("unknown function `{other}`"))),
        };
        arity(n)?;
        let w = want.unwrap_or(natural);
        self.graph
            .node(prim, w, &inputs)
            .map_err(|e| err(e.to_string()))
    }
}

/// Parses one `extension … { … }` block into a compiled [`ExtensionSet`].
///
/// # Errors
///
/// Returns a [`LangError`] (with the offending source line) for lexical,
/// syntactic and elaboration errors, including the [`crate::TieError`]s of
/// the underlying extension compiler.
pub fn parse_extension(src: &str) -> Result<ExtensionSet, LangError> {
    let mut p = Parser {
        lex: Lexer::new(src)?,
    };
    p.lex.expect_keyword("extension")?;
    let ext_name = p.lex.expect_ident()?;
    p.lex.expect_punct('{')?;

    let mut builder = ExtensionBuilder::new(ext_name);
    let mut states: HashMap<String, (StateId, u8)> = HashMap::new();
    let mut tables: HashMap<String, TableDecl> = HashMap::new();
    let mut insts: Vec<InstAst> = Vec::new();

    while !p.lex.eat_punct('}') {
        let line = p.lex.line();
        let kw = p.lex.expect_ident()?;
        match kw.as_str() {
            "state" => {
                let name = p.lex.expect_ident()?;
                p.lex.expect_punct(':')?;
                let width = p.lex.expect_int()? as u8;
                p.lex.expect_punct(';')?;
                let id = builder
                    .state(name.clone(), width)
                    .map_err(|e| LangError::new(line, e.to_string()))?;
                states.insert(name, (id, width));
            }
            "table" => {
                let name = p.lex.expect_ident()?;
                p.lex.expect_punct('[')?;
                let entries = p.lex.expect_int()? as usize;
                p.lex.expect_punct(']')?;
                p.lex.expect_punct(':')?;
                let width = p.lex.expect_int()? as u8;
                p.lex.expect_punct('=')?;
                p.lex.expect_punct('{')?;
                let mut values = Vec::new();
                if !p.lex.eat_punct('}') {
                    loop {
                        values.push(p.lex.expect_int()?);
                        if p.lex.eat_punct('}') {
                            break;
                        }
                        p.lex.expect_punct(',')?;
                    }
                }
                p.lex.expect_punct(';')?;
                if values.len() != entries {
                    return Err(LangError::new(
                        line,
                        format!(
                            "table `{name}` declares {entries} entries but lists {}",
                            values.len()
                        ),
                    ));
                }
                tables.insert(
                    name,
                    TableDecl {
                        entries: values,
                        width,
                    },
                );
            }
            "inst" => insts.push(p.parse_inst()?),
            other => {
                return Err(LangError::new(
                    line,
                    format!("expected `state`, `table` or `inst`, found `{other}`"),
                ))
            }
        }
    }

    for ast in insts {
        elaborate_inst(&mut builder, &states, &tables, ast)?;
    }
    builder
        .build()
        .map_err(|e| LangError::new(0, format!("extension compilation failed: {e}")))
}

fn elaborate_inst(
    builder: &mut ExtensionBuilder,
    states: &HashMap<String, (StateId, u8)>,
    tables: &HashMap<String, TableDecl>,
    ast: InstAst,
) -> Result<(), LangError> {
    let mut elab = Elaborator {
        graph: DfGraph::new(),
        env: HashMap::new(),
        tables,
        table_instances: HashMap::new(),
    };

    // Declare graph inputs and remember operand bindings.
    let mut input_binds = Vec::new();
    let mut gpr_inputs = 0;
    let mut outputs: Vec<(String, OutputBind, Option<u8>, usize)> = Vec::new();
    for param in &ast.params {
        match &param.kind {
            ParamKind::GprIn(w) => {
                let id = elab.graph.input(&param.name, *w);
                elab.env.insert(param.name.clone(), id);
                input_binds.push(match gpr_inputs {
                    0 => InputBind::GprS,
                    1 => InputBind::GprT,
                    _ => {
                        return Err(LangError::new(
                            param.line,
                            "at most two gpr inputs (operand buses rs/rt)".to_owned(),
                        ))
                    }
                });
                gpr_inputs += 1;
            }
            ParamKind::ImmIn(w) => {
                let id = elab.graph.input(&param.name, *w);
                elab.env.insert(param.name.clone(), id);
                input_binds.push(InputBind::Imm);
            }
            ParamKind::StateIn(state_name) => {
                let &(sid, w) = states.get(state_name).ok_or_else(|| {
                    LangError::new(param.line, format!("unknown state `{state_name}`"))
                })?;
                let id = elab.graph.input(&param.name, w);
                elab.env.insert(param.name.clone(), id);
                input_binds.push(InputBind::State(sid));
            }
            ParamKind::GprOut => {
                outputs.push((param.name.clone(), OutputBind::Gpr, None, param.line));
            }
            ParamKind::StateOut(state_name) => {
                let &(sid, w) = states.get(state_name).ok_or_else(|| {
                    LangError::new(param.line, format!("unknown state `{state_name}`"))
                })?;
                outputs.push((
                    param.name.clone(),
                    OutputBind::State(sid),
                    Some(w),
                    param.line,
                ));
            }
        }
    }

    // Lower the body; assignments to output names drive the outputs.
    let mut driven: HashMap<String, NodeId> = HashMap::new();
    for stmt in &ast.body {
        let is_output = outputs.iter().any(|(n, ..)| n == &stmt.name);
        if elab.env.contains_key(&stmt.name) || driven.contains_key(&stmt.name) {
            return Err(LangError::new(
                stmt.line,
                format!("`{}` assigned twice", stmt.name),
            ));
        }
        // Output-to-state assignments coerce to the state's width.
        let want = stmt.width.or_else(|| {
            outputs
                .iter()
                .find(|(n, ..)| n == &stmt.name)
                .and_then(|(_, _, w, _)| *w)
        });
        let id = elab.lower(&stmt.expr, want, stmt.line)?;
        if is_output {
            driven.insert(stmt.name.clone(), id);
        } else {
            elab.env.insert(stmt.name.clone(), id);
        }
    }

    // Register outputs in parameter order.
    let mut output_binds = Vec::new();
    for (name, bind, _, line) in &outputs {
        let &id = driven
            .get(name)
            .ok_or_else(|| LangError::new(*line, format!("output `{name}` is never assigned")))?;
        elab.graph.output(id);
        output_binds.push(*bind);
    }

    let line = ast.line;
    let mut inst = builder
        .instruction(ast.name, elab.graph)
        .map_err(|e| LangError::new(line, e.to_string()))?;
    for bind in input_binds {
        inst.bind_input(bind)
            .map_err(|e| LangError::new(line, e.to_string()))?;
    }
    for bind in output_binds {
        inst.bind_output(bind)
            .map_err(|e| LangError::new(line, e.to_string()))?;
    }
    if let Some(latency) = ast.latency {
        inst.latency(latency)
            .map_err(|e| LangError::new(line, e.to_string()))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_mac_extension() {
        let set = parse_extension(
            "extension mac16 {
                state acc : 40;
                inst mac(a: gpr(16), b: gpr(16), acc_in: state(acc), out acc_out: state(acc)) {
                    acc_out = mac(a, b, acc_in);
                }
                inst rdacc(acc_in: state(acc), out d: gpr) {
                    d = slice(acc_in, 0, 32);
                }
                inst clracc(out acc_out: state(acc)) {
                    acc_out : 40 = 0;
                }
            }",
        )
        .expect("parses");
        assert_eq!(set.len(), 3);
        let mac = set.by_name("mac").expect("declared");
        let mut state = set.initial_state();
        mac.execute(100, 200, 0, &mut state).expect("runs");
        mac.execute(3, 4, 0, &mut state).expect("runs");
        assert_eq!(state[0], 20012);
        let rd = set.by_name("rdacc").expect("declared");
        assert_eq!(
            rd.execute(0, 0, 0, &mut state).expect("runs").gpr,
            Some(20012)
        );
    }

    #[test]
    fn expression_precedence_is_c_like() {
        let set = parse_extension(
            "extension demo {
                inst f(a: gpr(8), b: gpr(8), out d: gpr) {
                    d : 16 = a + b * 2;    // mul binds tighter
                }
                inst g(a: gpr(8), b: gpr(8), out d: gpr) {
                    d : 16 = (a + b) * 2;
                }
            }",
        )
        .expect("parses");
        let mut st = set.initial_state();
        let f = set.by_name("f").expect("declared");
        let g = set.by_name("g").expect("declared");
        assert_eq!(f.execute(3, 5, 0, &mut st).expect("runs").gpr, Some(13));
        assert_eq!(g.execute(3, 5, 0, &mut st).expect("runs").gpr, Some(16));
    }

    #[test]
    fn tables_and_comparisons() {
        let set = parse_extension(
            "extension t {
                table sq[8] : 8 = { 0, 1, 4, 9, 16, 25, 36, 49 };
                inst f(a: gpr(3), b: gpr(8), out d: gpr) {
                    s = sq[a];
                    bigger = ltu(b, s);
                    d : 8 = mux(bigger, s, b);
                }
            }",
        )
        .expect("parses");
        let f = set.by_name("f").expect("declared");
        let mut st = set.initial_state();
        assert_eq!(f.execute(4, 10, 0, &mut st).expect("runs").gpr, Some(16));
        assert_eq!(f.execute(2, 10, 0, &mut st).expect("runs").gpr, Some(10));
    }

    #[test]
    fn immediates_and_latency() {
        let set = parse_extension(
            "extension t {
                inst addk(a: gpr, k: imm(8), out d: gpr) latency 3 {
                    d : 32 = a + k;
                }
            }",
        )
        .expect("parses");
        let inst = set.by_name("addk").expect("declared");
        assert_eq!(inst.latency(), 3);
        let mut st = set.initial_state();
        assert_eq!(inst.execute(40, 0, 2, &mut st).expect("runs").gpr, Some(42));
    }

    #[test]
    fn dsl_matches_builder_semantics_for_gf16() {
        // The same GF(2^4) multiplier written in the language must agree
        // with the reference implementation on the full multiplication
        // table.
        let log: Vec<String> = tests_gf_log();
        let exp: Vec<String> = tests_gf_exp();
        let src = format!(
            "extension gf {{
                table logt[16] : 4 = {{ {} }};
                table expt[32] : 4 = {{ {} }};
                inst gfmul(a: gpr(4), b: gpr(4), out d: gpr) {{
                    la = logt[a];
                    lb = logt[b];
                    s : 5 = la + lb;
                    p = expt[s];
                    nz = redor(a) & redor(b);
                    d : 4 = mux(nz, p, 0);
                }}
            }}",
            log.join(", "),
            exp.join(", ")
        );
        let set = parse_extension(&src).expect("parses");
        let gfmul = set.by_name("gfmul").expect("declared");
        let mut st = set.initial_state();
        for a in 0..16u32 {
            for b in 0..16u32 {
                let got = gfmul
                    .execute(a, b, 0, &mut st)
                    .expect("runs")
                    .gpr
                    .expect("writes");
                assert_eq!(got as u8, reference_gf_mul(a as u8, b as u8), "{a}⊗{b}");
            }
        }
    }

    fn reference_gf_mul(mut a: u8, mut b: u8) -> u8 {
        let mut p = 0u8;
        for _ in 0..4 {
            if b & 1 != 0 {
                p ^= a;
            }
            b >>= 1;
            let carry = a & 8;
            a = (a << 1) & 0xf;
            if carry != 0 {
                a ^= 0b0011;
            }
        }
        p & 0xf
    }

    fn gf_exp(i: usize) -> u8 {
        let mut v = 1u8;
        for _ in 0..(i % 15) {
            v = reference_gf_mul(v, 2);
        }
        v
    }

    fn tests_gf_log() -> Vec<String> {
        let mut t = [0u8; 16];
        for x in 1..16u8 {
            t[x as usize] = (0..15).find(|&i| gf_exp(i) == x).expect("generator") as u8;
        }
        t.iter().map(|v| v.to_string()).collect()
    }

    fn tests_gf_exp() -> Vec<String> {
        (0..32).map(|i| gf_exp(i % 15).to_string()).collect()
    }

    #[test]
    fn error_reporting_points_at_lines() {
        let err = parse_extension("extension x {\n  bogus y;\n}").expect_err("bad keyword");
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus"));

        let err =
            parse_extension("extension x {\n inst f(a: gpr, out d: gpr) {\n  d = q + 1;\n }\n}")
                .expect_err("unknown name");
        assert_eq!(err.line, 3);
        assert!(err.message.contains("unknown name"));

        let err = parse_extension("extension x {\n inst f(a: gpr, out d: gpr) {\n  w = a;\n }\n}")
            .expect_err("undriven output");
        assert!(err.message.contains("never assigned"));

        let err = parse_extension("extension x {\n table t[2] : 4 = { 1, 2, 3 };\n}")
            .expect_err("entry count mismatch");
        assert!(err.message.contains("declares 2 entries"));
    }

    #[test]
    fn csa_functions_work() {
        let set = parse_extension(
            "extension c {
                inst f(a: gpr(8), b: gpr(8), out d: gpr) {
                    s = csa_sum(a, b, 7);
                    k : 9 = csa_carry(a, b, 7);
                    d : 10 = add3(s, k, 0);
                }
            }",
        )
        .expect("parses");
        let f = set.by_name("f").expect("declared");
        let mut st = set.initial_state();
        assert_eq!(f.execute(100, 50, 0, &mut st).expect("runs").gpr, Some(157));
    }
}
