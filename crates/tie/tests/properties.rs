//! Property-based tests for the extension framework.

use proptest::prelude::*;

use emx_hwlib::{DfGraph, PrimOp};
use emx_tie::{ExtensionBuilder, ExtensionSet, InputBind, OutputBind};

/// Builds a small single-instruction extension `f(a, b) = op(a, b)`.
fn unit_ext(op: PrimOp, w: u8) -> ExtensionSet {
    let mut ext = ExtensionBuilder::new("unit");
    ext.instruction("f", DfGraph::single_op(op, w, w))
        .expect("valid name")
        .bind_input(InputBind::GprS)
        .expect("bind")
        .bind_input(InputBind::GprT)
        .expect("bind")
        .bind_output(OutputBind::Gpr)
        .expect("bind");
    ext.build().expect("compiles")
}

proptest! {
    #[test]
    fn execute_and_execute_into_agree(a in any::<u32>(), b in any::<u32>(), w in 1u8..=32) {
        for op in [PrimOp::Add, PrimOp::Xor, PrimOp::Mul, PrimOp::MinU] {
            let ext = unit_ext(op, w);
            let inst = ext.by_name("f").expect("exists");
            let mut s1 = ext.initial_state();
            let slow = inst.execute(a, b, 0, &mut s1).expect("executes");
            let mut s2 = ext.initial_state();
            let mut buf = Vec::new();
            let fast = inst
                .execute_into(a, b, 0, &mut s2, &mut buf)
                .expect("executes");
            prop_assert_eq!(slow.gpr, fast);
            prop_assert_eq!(&slow.node_values, &buf);
            prop_assert_eq!(s1, s2);
        }
    }

    #[test]
    fn latency_is_at_least_one_and_bounded(w in 1u8..=32, depth in 1usize..8) {
        // A chain of `depth` adders: latency grows with depth but is
        // always ≥ 1 and ≤ depth (one level per adder, two levels per
        // cycle).
        let mut ext = ExtensionBuilder::new("chain");
        let mut g = DfGraph::new();
        let a = g.input("a", w);
        let b = g.input("b", w);
        let mut cur = g.node(PrimOp::Add, w, &[a, b]).expect("graph");
        for _ in 1..depth {
            cur = g.node(PrimOp::Add, w, &[cur, b]).expect("graph");
        }
        g.output(cur);
        ext.instruction("chain", g)
            .expect("inst")
            .bind_input(InputBind::GprS)
            .expect("bind")
            .bind_input(InputBind::GprT)
            .expect("bind")
            .bind_output(OutputBind::Gpr)
            .expect("bind");
        let set = ext.build().expect("compiles");
        let lat = usize::from(set.by_name("chain").expect("exists").latency());
        prop_assert!(lat >= 1);
        prop_assert!(lat <= depth, "latency {lat} for depth {depth}");
    }

    #[test]
    fn resource_vector_scales_with_instance_count(copies in 1usize..6, w in 1u8..=32) {
        // N parallel adders → N × the single-adder resource entry.
        let build = |n: usize| {
            let mut ext = ExtensionBuilder::new("par");
            let mut g = DfGraph::new();
            let a = g.input("a", w);
            let b = g.input("b", w);
            let mut last = a;
            for _ in 0..n {
                last = g.node(PrimOp::Add, w, &[a, b]).expect("graph");
            }
            g.output(last);
            ext.instruction("p", g)
                .expect("inst")
                .bind_input(InputBind::GprS)
                .expect("bind")
                .bind_input(InputBind::GprT)
                .expect("bind")
                .bind_output(OutputBind::Gpr)
                .expect("bind");
            ext.build().expect("compiles")
        };
        let one = build(1);
        let many = build(copies);
        let idx = emx_hwlib::Category::AdderCmp.index();
        let single = one.by_name("p").expect("exists").resource_vector()[idx];
        let multi = many.by_name("p").expect("exists").resource_vector()[idx];
        prop_assert!((multi - copies as f64 * single).abs() < 1e-9);
    }

    #[test]
    fn state_width_masks_writes(v in any::<u64>(), w in 1u8..=32) {
        // Writing a wide value into a narrow state register keeps only
        // the register's bits.
        let mut ext = ExtensionBuilder::new("st");
        let s = ext.state("s", w).expect("state");
        let mut g = DfGraph::new();
        let a = g.input("a", 32.min(w));
        g.output(a);
        ext.instruction("wr", g)
            .expect("inst")
            .bind_input(InputBind::GprS)
            .expect("bind")
            .bind_output(OutputBind::State(s))
            .expect("bind");
        let set = ext.build().expect("compiles");
        let mut state = set.initial_state();
        set.by_name("wr")
            .expect("exists")
            .execute(v as u32, 0, 0, &mut state)
            .expect("executes");
        let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
        prop_assert_eq!(state[0], u64::from(v as u32) & mask & 0xffff_ffff);
    }
}
