//! A registry-free stand-in for the [`proptest`] crate.
//!
//! The emx workspace must build and test with `cargo build --offline` on
//! machines that have **no** crates.io access (see `crates/obs` — the
//! whole workspace is dependency-free). The property tests, however, are
//! written against proptest's API. This crate implements exactly the
//! subset those tests use — `proptest!`, `prop_assert*`, `prop_assume!`,
//! `Strategy` with `prop_map`/`prop_flat_map`, `Just`, `any`, integer /
//! float range strategies, tuple strategies and `collection::vec` — on
//! top of a deterministic xorshift generator, so the tests run verbatim
//! without the registry.
//!
//! Differences from real proptest, by design:
//!
//! * shrinking is *explicit*, not automatic: the [`shrink`] module offers
//!   a [`shrink::Shrink`] trait plus a greedy [`shrink::minimize`] driver
//!   that harnesses (like the differential fuzzer in `emx-validate`) call
//!   on a failing case's *recipe*; the `proptest!` macro itself reports
//!   the seed and moves on,
//! * fixed case count (64 per test) with deterministic per-test seeds,
//!   so failures reproduce across runs and machines,
//! * `Strategy::generate` is the whole engine; there is no `ValueTree`.
//!
//! If the workspace ever regains registry access, deleting this crate
//! and restoring `proptest = "1"` in the workspace manifest is the only
//! change needed.
//!
//! [`proptest`]: https://docs.rs/proptest

#![forbid(unsafe_code)]

pub mod test_runner {
    //! The minimal case-outcome plumbing used by the macros.

    /// Result of running one generated test case.
    #[derive(Debug)]
    pub enum CaseOutcome {
        /// All assertions held.
        Pass,
        /// A `prop_assume!` rejected the inputs; the case is not counted.
        Skip,
        /// An assertion failed.
        Fail(String),
    }

    /// Deterministic xorshift64* generator — the only entropy source.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator with the given nonzero-forced seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed | 1 }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state ^= self.state << 13;
            self.state ^= self.state >> 7;
            self.state ^= self.state << 17;
            self.state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! Value-generation strategies and their combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of an output type from random bits.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// builds out of it (dependent generation).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = i128::from(self.end) - i128::from(self.start);
                    assert!(span > 0, "empty range strategy");
                    (i128::from(self.start) + (i128::from(rng.next_u64()) % span)) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = i128::from(*self.end()) - i128::from(*self.start()) + 1;
                    (i128::from(*self.start()) + (i128::from(rng.next_u64()) % span)) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, i8, i16, i32, i64);

    impl Strategy for Range<usize> {
        type Value = usize;
        fn generate(&self, rng: &mut TestRng) -> usize {
            let span = (self.end - self.start) as u64;
            assert!(span > 0, "empty range strategy");
            self.start + (rng.next_u64() % span) as usize
        }
    }

    impl Strategy for RangeInclusive<usize> {
        type Value = usize;
        fn generate(&self, rng: &mut TestRng) -> usize {
            let span = (*self.end() - *self.start()) as u64 + 1;
            *self.start() + (rng.next_u64() % span) as usize
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — full-domain strategies for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64() * 2e9 - 1e9
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! `vec` — collections of generated elements.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A length specification: fixed, or drawn from a range per case.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! `select` — draw one element of a fixed list.
    //!
    //! This replaces the ad-hoc `for op in [..]`-inside-the-property
    //! pattern the per-crate test suites used to copy around: selecting
    //! the variant *as part of the strategy* lets failures name the exact
    //! case and keeps the case budget spread across variants.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }

    /// A strategy yielding one of `options`, uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: impl Into<Vec<T>>) -> Select<T> {
        let options = options.into();
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }
}

pub mod shrink {
    //! Explicit counterexample shrinking.
    //!
    //! The stand-in has no `ValueTree`, so shrinking works on the *value*
    //! (typically a plain-data recipe that a harness expands into the real
    //! structure): [`Shrink::shrink_candidates`] proposes strictly simpler
    //! variants, and [`minimize`] greedily walks them while a failure
    //! predicate keeps holding. Determinism is inherited from the
    //! candidate order — no randomness is involved.

    /// A value that can propose strictly simpler variants of itself.
    ///
    /// Implementations must guarantee *progress*: every candidate is
    /// strictly smaller under some well-founded measure (magnitude,
    /// length, recursively), so [`minimize`] terminates.
    pub trait Shrink: Sized {
        /// Simpler candidate values, most aggressive first.
        fn shrink_candidates(&self) -> Vec<Self>;
    }

    macro_rules! shrink_unsigned {
        ($($t:ty),*) => {$(
            impl Shrink for $t {
                fn shrink_candidates(&self) -> Vec<Self> {
                    let v = *self;
                    let mut out = Vec::new();
                    if v > 0 {
                        out.push(0);
                        if v > 1 {
                            out.push(v / 2);
                        }
                        out.push(v - 1);
                    }
                    out.dedup();
                    out
                }
            }
        )*};
    }
    shrink_unsigned!(u8, u16, u32, u64, usize);

    impl<T: Shrink + Clone> Shrink for Vec<T> {
        /// Shrinks by removing one element (every position), then by
        /// shrinking one element in place.
        fn shrink_candidates(&self) -> Vec<Self> {
            let mut out = Vec::new();
            for i in 0..self.len() {
                let mut shorter = self.clone();
                shorter.remove(i);
                out.push(shorter);
            }
            for i in 0..self.len() {
                for replacement in self[i].shrink_candidates() {
                    let mut smaller = self.clone();
                    smaller[i] = replacement;
                    out.push(smaller);
                }
            }
            out
        }
    }

    /// Greedily minimizes `start` while `fails` keeps returning `true`.
    ///
    /// At each step the first candidate that still fails is taken; the
    /// walk stops when no candidate fails or after `max_steps` accepted
    /// steps (a budget against expensive predicates, not against
    /// non-termination — [`Shrink`] candidates always make progress).
    /// Returns the simplest failing value found, which is `start` itself
    /// when nothing simpler fails.
    pub fn minimize<T, F>(start: T, max_steps: usize, mut fails: F) -> T
    where
        T: Shrink,
        F: FnMut(&T) -> bool,
    {
        let mut current = start;
        for _ in 0..max_steps {
            let Some(next) = current
                .shrink_candidates()
                .into_iter()
                .find(|candidate| fails(candidate))
            else {
                break;
            };
            current = next;
        }
        current
    }
}

pub mod prelude {
    //! Everything the tests import with `use proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::sample::select;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each test runs 64 generated cases with a seed derived from the test
/// name; a failure panics with the seed and case number so it can be
/// reproduced exactly.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            const CASES: u32 = 64;
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in stringify!($name).bytes() {
                seed ^= u64::from(byte);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut rng = $crate::test_runner::TestRng::new(seed);
            let mut passed = 0u32;
            let mut attempts = 0u32;
            while passed < CASES && attempts < CASES * 10 {
                attempts += 1;
                let outcome = {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    (|| -> $crate::test_runner::CaseOutcome {
                        $body
                        $crate::test_runner::CaseOutcome::Pass
                    })()
                };
                match outcome {
                    $crate::test_runner::CaseOutcome::Pass => passed += 1,
                    $crate::test_runner::CaseOutcome::Skip => {}
                    $crate::test_runner::CaseOutcome::Fail(message) => panic!(
                        "[{}] case {} failed (seed {:#x}): {}",
                        stringify!($name),
                        attempts,
                        seed,
                        message
                    ),
                }
            }
            assert!(
                passed >= CASES / 4,
                "[{}] too many prop_assume! rejections: {passed} of {attempts} attempts passed",
                stringify!($name)
            );
        }
    )*};
}

/// Fails the current case unless `condition` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return $crate::test_runner::CaseOutcome::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return $crate::test_runner::CaseOutcome::Fail(format!($($fmt)+));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return $crate::test_runner::CaseOutcome::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return $crate::test_runner::CaseOutcome::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                left,
                right
            ));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return $crate::test_runner::CaseOutcome::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            ));
        }
    }};
}

/// Skips the current case (without counting it) unless `condition` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return $crate::test_runner::CaseOutcome::Skip;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = (0u32..100).prop_map(|v| v * 2);
        let a: Vec<u32> = {
            let mut rng = TestRng::new(42);
            (0..10).map(|_| s.generate(&mut rng)).collect()
        };
        let b: Vec<u32> = {
            let mut rng = TestRng::new(42);
            (0..10).map(|_| s.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn minimize_finds_a_local_minimum() {
        use crate::shrink::{minimize, Shrink};
        // Failure: the sum of the vector is at least 10. The greedy walk
        // must land on a minimal failing vector: removing or shrinking
        // any element drops the sum below 10.
        let start = vec![7u32, 8, 9];
        let min = minimize(start, 1000, |v: &Vec<u32>| v.iter().sum::<u32>() >= 10);
        assert!(min.iter().sum::<u32>() >= 10, "result must still fail");
        for candidate in min.shrink_candidates() {
            assert!(
                candidate.iter().sum::<u32>() < 10,
                "{candidate:?} still fails, so {min:?} was not minimal"
            );
        }
    }

    #[test]
    fn minimize_returns_start_when_nothing_simpler_fails() {
        let min = crate::shrink::minimize(5u32, 100, |&v| v == 5);
        assert_eq!(min, 5);
    }

    #[test]
    fn unsigned_shrink_makes_progress() {
        use crate::shrink::Shrink;
        for v in [1u64, 2, 97, u64::MAX] {
            for c in v.shrink_candidates() {
                assert!(c < v, "{c} is not smaller than {v}");
            }
        }
        assert!(0u64.shrink_candidates().is_empty());
    }

    proptest! {
        #[test]
        fn select_only_yields_listed_options(v in select(vec![3u32, 5, 8])) {
            prop_assert!([3, 5, 8].contains(&v));
        }

        #[test]
        fn ranges_respect_bounds(v in 10u32..20, w in 1u8..=32, f in -2.0f64..2.0) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((1..=32).contains(&w));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn signed_ranges_cover_negatives(v in -2048i32..2048) {
            prop_assert!((-2048..2048).contains(&v));
        }

        #[test]
        fn vec_lengths_respect_spec(fixed in crate::collection::vec(0u64..5, 6),
                                    ranged in crate::collection::vec(0u64..5, 1..4)) {
            prop_assert_eq!(fixed.len(), 6);
            prop_assert!((1..4).contains(&ranged.len()));
        }

        #[test]
        fn flat_map_feeds_dependent_strategies(pair in (2usize..6).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0u32..10, n))
        })) {
            prop_assert_eq!(pair.0, pair.1.len());
        }

        #[test]
        fn assume_skips_without_failing(v in 0u32..10) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }
    }
}
