//! Property-based tests for the macro-model: linearity, homogeneity and
//! template consistency — the algebraic guarantees that make regression
//! characterization sound.

use proptest::prelude::*;

use emx_core::{ArithGranularity, EnergyMacroModel, ModelSpec};
use emx_sim::ExecStats;

fn spec_strategy() -> impl Strategy<Value = ModelSpec> {
    (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
        |(structural, ci, width, per_unit)| ModelSpec {
            structural,
            ci_side_effect: ci,
            width_complexity: width,
            arith: if per_unit {
                ArithGranularity::PerUnit
            } else {
                ArithGranularity::Clustered
            },
        },
    )
}

fn stats_strategy() -> impl Strategy<Value = ExecStats> {
    (
        proptest::collection::vec(0u64..10_000, 6),
        proptest::collection::vec(0u64..500, 5),
        proptest::collection::vec(0.0f64..100.0, 10),
    )
        .prop_map(|(classes, events, structural)| {
            let mut s = ExecStats::new(0);
            s.class_cycles.copy_from_slice(&classes);
            s.icache_misses = events[0];
            s.dcache_misses = events[1];
            s.uncached_fetches = events[2];
            s.interlocks = events[3];
            s.ci_gpr_cycles = events[4];
            s.struct_activity.copy_from_slice(&structural);
            s.struct_activations.copy_from_slice(&structural);
            // Spread the class-A cycles over a few opcodes so PerUnit
            // extraction has consistent totals.
            s.opcode_cycles[emx_isa::Opcode::Add.index()] = classes[0];
            s
        })
}

fn scale(s: &ExecStats, k: u64) -> ExecStats {
    let mut out = s.clone();
    for v in &mut out.class_cycles {
        *v *= k;
    }
    out.icache_misses *= k;
    out.dcache_misses *= k;
    out.uncached_fetches *= k;
    out.interlocks *= k;
    out.ci_gpr_cycles *= k;
    for v in &mut out.struct_activity {
        *v *= k as f64;
    }
    for v in &mut out.struct_activations {
        *v *= k as f64;
    }
    for v in &mut out.opcode_cycles {
        *v *= k;
    }
    out
}

proptest! {
    #[test]
    fn names_and_variables_stay_consistent(spec in spec_strategy(), stats in stats_strategy()) {
        prop_assert_eq!(spec.variable_names().len(), spec.len());
        prop_assert_eq!(spec.variables(&stats).len(), spec.len());
    }

    #[test]
    fn model_is_homogeneous(spec in spec_strategy(), stats in stats_strategy(), k in 1u64..10) {
        // E(k·stats) = k·E(stats): doubling a program doubles its energy.
        let coefficients: Vec<f64> = (0..spec.len()).map(|i| 10.0 + i as f64).collect();
        let model = EnergyMacroModel::new(spec, coefficients);
        let e1 = model.energy_of_stats(&stats).as_picojoules();
        let ek = model.energy_of_stats(&scale(&stats, k)).as_picojoules();
        prop_assert!((ek - k as f64 * e1).abs() < 1e-6 * ek.abs().max(1.0), "{ek} vs {}", k as f64 * e1);
    }

    #[test]
    fn model_is_additive(spec in spec_strategy(), a in stats_strategy(), b in stats_strategy()) {
        let coefficients: Vec<f64> = (0..spec.len()).map(|i| 5.0 + 2.0 * i as f64).collect();
        let model = EnergyMacroModel::new(spec, coefficients);
        let mut ab = a.clone();
        for (x, y) in ab.class_cycles.iter_mut().zip(b.class_cycles) {
            *x += y;
        }
        ab.icache_misses += b.icache_misses;
        ab.dcache_misses += b.dcache_misses;
        ab.uncached_fetches += b.uncached_fetches;
        ab.interlocks += b.interlocks;
        ab.ci_gpr_cycles += b.ci_gpr_cycles;
        for (x, y) in ab.struct_activity.iter_mut().zip(b.struct_activity) {
            *x += y;
        }
        for (x, y) in ab.struct_activations.iter_mut().zip(b.struct_activations) {
            *x += y;
        }
        for (x, y) in ab.opcode_cycles.iter_mut().zip(&b.opcode_cycles) {
            *x += y;
        }
        let sum = model.energy_of_stats(&a) + model.energy_of_stats(&b);
        let whole = model.energy_of_stats(&ab);
        prop_assert!((whole.as_picojoules() - sum.as_picojoules()).abs() < 1e-6);
    }

    #[test]
    fn zero_stats_cost_zero(spec in spec_strategy()) {
        let coefficients: Vec<f64> = (0..spec.len()).map(|i| 100.0 + i as f64).collect();
        let model = EnergyMacroModel::new(spec, coefficients);
        prop_assert_eq!(model.energy_of_stats(&ExecStats::new(0)).as_picojoules(), 0.0);
    }

    #[test]
    fn coefficient_lookup_matches_order(spec in spec_strategy()) {
        let coefficients: Vec<f64> = (0..spec.len()).map(|i| i as f64).collect();
        let model = EnergyMacroModel::new(spec, coefficients);
        for (i, name) in model.names().to_vec().iter().enumerate() {
            prop_assert_eq!(model.coefficient(name), Some(i as f64));
        }
    }
}
