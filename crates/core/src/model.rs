use emx_isa::Program;
use emx_rtlpower::Energy;
use emx_sim::{ExecStats, Interp, ProcConfig, SimError};
use emx_tie::ExtensionSet;

use crate::ModelSpec;

/// Result of estimating an application's energy with the macro-model
/// (steps 9–11 of the paper's flow).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyEstimate {
    /// The estimated energy.
    pub energy: Energy,
    /// The instruction-set-simulation statistics the estimate was derived
    /// from (exposed so callers can report cycles, CPI, …, without a
    /// second simulation — C-INTERMEDIATE).
    pub stats: ExecStats,
}

/// A characterized energy macro-model for an extensible processor.
///
/// Holds the fitted energy-coefficient vector for a [`ModelSpec`]
/// template. Once built (see [`crate::Characterizer`]), estimating the
/// energy of an application with **any** custom-instruction extensions
/// requires only instruction-set simulation — the extended processor is
/// never synthesized or power-simulated.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyMacroModel {
    spec: ModelSpec,
    names: Vec<String>,
    coefficients: Vec<f64>,
}

impl EnergyMacroModel {
    /// Creates a model from a fitted coefficient vector.
    ///
    /// # Panics
    ///
    /// Panics if `coefficients.len() != spec.len()`.
    pub fn new(spec: ModelSpec, coefficients: Vec<f64>) -> Self {
        assert_eq!(
            coefficients.len(),
            spec.len(),
            "coefficient count does not match the template"
        );
        EnergyMacroModel {
            names: spec.variable_names(),
            spec,
            coefficients,
        }
    }

    /// The template this model was fitted for.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// The fitted energy coefficients, in template order (the content of
    /// the paper's Table I).
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Variable names, in the same order as [`Self::coefficients`].
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Looks a coefficient up by variable name (e.g. `"alpha_A"`,
    /// `"delta_shift"`).
    pub fn coefficient(&self, name: &str) -> Option<f64> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.coefficients[i])
    }

    /// `(name, value)` rows of the coefficient table, in Table I order.
    pub fn coefficient_table(&self) -> Vec<(&str, f64)> {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.coefficients.iter().copied())
            .collect()
    }

    /// Applies the macro-model to already-gathered execution statistics
    /// (step 11: one dot product).
    pub fn energy_of_stats(&self, stats: &ExecStats) -> Energy {
        let x = self.spec.variables(stats);
        let pj: f64 = x.iter().zip(&self.coefficients).map(|(v, c)| v * c).sum();
        Energy::from_picojoules(pj)
    }

    /// Estimates the energy of `program` running on the processor extended
    /// with `ext` — fast instruction-set simulation (step 9), dynamic
    /// resource-usage analysis (step 10) and the macro-model evaluation
    /// (step 11). No synthesis, no RTL power simulation.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors; uses a 2³²-cycle budget.
    pub fn estimate(
        &self,
        program: &Program,
        ext: &ExtensionSet,
        config: ProcConfig,
    ) -> Result<EnergyEstimate, SimError> {
        let mut sim = Interp::new(program, ext, config);
        let run = sim.run(u64::from(u32::MAX))?;
        Ok(EnergyEstimate {
            energy: self.energy_of_stats(&run.stats),
            stats: run.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emx_isa::asm::Assembler;

    fn toy_model() -> EnergyMacroModel {
        // Simple known coefficients: 100 pJ per arithmetic cycle, 50 per
        // load cycle, everything else zero.
        let spec = ModelSpec::paper();
        let mut c = vec![0.0; spec.len()];
        c[0] = 100.0;
        c[1] = 50.0;
        EnergyMacroModel::new(spec, c)
    }

    #[test]
    fn energy_of_stats_is_a_dot_product() {
        let mut stats = ExecStats::new(0);
        stats.class_cycles[0] = 10; // arithmetic
        stats.class_cycles[1] = 4; // load
        let e = toy_model().energy_of_stats(&stats);
        assert_eq!(e.as_picojoules(), 10.0 * 100.0 + 4.0 * 50.0);
    }

    #[test]
    fn estimate_runs_the_iss() {
        let program = Assembler::new()
            .assemble("movi a2, 3\naddi a2, a2, 1\nhalt")
            .unwrap();
        let ext = ExtensionSet::empty();
        let est = toy_model()
            .estimate(&program, &ext, ProcConfig::default())
            .unwrap();
        // 2 arithmetic cycles + 1 halt (jump class, coefficient 0):
        assert_eq!(est.energy.as_picojoules(), 200.0);
        assert_eq!(est.stats.inst_count, 3);
    }

    #[test]
    fn coefficient_lookup() {
        let m = toy_model();
        assert_eq!(m.coefficient("alpha_A"), Some(100.0));
        assert_eq!(m.coefficient("alpha_L"), Some(50.0));
        assert_eq!(m.coefficient("nope"), None);
        assert_eq!(m.coefficient_table().len(), 21);
        assert_eq!(m.coefficient_table()[0], ("alpha_A", 100.0));
    }

    #[test]
    #[should_panic(expected = "coefficient count")]
    fn wrong_coefficient_count_panics() {
        let _ = EnergyMacroModel::new(ModelSpec::paper(), vec![1.0; 3]);
    }

    #[test]
    fn linearity_in_stats() {
        // E(a+b) = E(a) + E(b): the macro-model is linear by construction.
        let m = toy_model();
        let mut a = ExecStats::new(0);
        a.class_cycles[0] = 7;
        a.icache_misses = 2;
        let mut b = ExecStats::new(0);
        b.class_cycles[1] = 3;
        b.interlocks = 5;
        let mut ab = ExecStats::new(0);
        ab.class_cycles[0] = 7;
        ab.class_cycles[1] = 3;
        ab.icache_misses = 2;
        ab.interlocks = 5;
        let sum = m.energy_of_stats(&a) + m.energy_of_stats(&b);
        assert!((m.energy_of_stats(&ab).as_picojoules() - sum.as_picojoules()).abs() < 1e-9);
    }
}
