//! Energy macro-models for extensible processors.
//!
//! This crate is the reproduction's primary contribution — the methodology
//! of *"Energy Estimation for Extensible Processors"* (Fei, Ravi,
//! Raghunathan, Jha; DATE 2003):
//!
//! > "Our solution … is an energy macro-model suitably parameterized to
//! > estimate the energy consumption of a processor instance that
//! > incorporates **any** custom instruction extensions."
//!
//! The macro-model is a linear template (Eq. 2–4 of the paper) over
//! **21 variables** drawn from two domains:
//!
//! * **instruction-level** (the fixed base core): per-class cycles
//!   `n_A, n_L, n_S, n_J, n_Bt, n_Bu`; non-ideal events `n_icm, n_dcm,
//!   n_ucf, n_ilk`; and the custom→base side-effect variable `n_CI`,
//! * **structural** (the customizable hardware): per-category active
//!   cycles of the ten hardware-library component classes, weighted by
//!   the bit-width complexity `f(C)`.
//!
//! The workflow has two halves, mirroring Fig. 2 of the paper:
//!
//! 1. **Characterization (steps 1–8)** — [`Characterizer::characterize`]
//!    runs each test program through instruction-set simulation (for the
//!    independent variables) and through the RTL-level reference
//!    estimator on its extended processor (for the dependent variable),
//!    then fits the energy coefficients by least squares
//!    (pseudo-inverse, Eq. 5). Done **once** per base processor.
//! 2. **Estimation (steps 9–11)** — [`EnergyMacroModel::estimate`] needs
//!    only fast instruction-set simulation plus dynamic resource-usage
//!    analysis; the custom processor is *never synthesized*. This is what
//!    makes the methodology three orders of magnitude faster than RTL
//!    power estimation and therefore usable inside an ASIP design-space
//!    exploration loop.
//!
//! Ablation hooks ([`ModelSpec`]) allow dropping the structural
//! variables, the side-effect variable, the `f(C)` weighting, or the
//! instruction clustering, to quantify each design choice of the paper.
//!
//! # Example
//!
//! ```no_run
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use emx_core::{Characterizer, TrainingCase};
//! use emx_isa::asm::Assembler;
//! use emx_sim::ProcConfig;
//! use emx_tie::ExtensionSet;
//!
//! let ext = ExtensionSet::empty();
//! let programs: Vec<(String, emx_isa::Program)> = /* diverse suite */
//! #    vec![];
//! let cases: Vec<TrainingCase<'_>> = programs
//!     .iter()
//!     .map(|(name, p)| TrainingCase { name, program: p, ext: &ext })
//!     .collect();
//! let result = Characterizer::new(ProcConfig::default()).characterize(&cases)?;
//! println!("RMS fitting error: {:.1}%", result.fit.rms_percent_error());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod characterize;
pub mod error;
mod io;
mod model;
mod vars;

pub use characterize::{
    CaseReport, Characterization, CharacterizeReport, Characterizer, TrainingCase,
};
pub use error::{CoreError, EmxError, ErrorKind};
pub use io::ParseModelError;
pub use model::{EnergyEstimate, EnergyMacroModel};
pub use vars::{ArithGranularity, ModelSpec};

pub use emx_rtlpower::Energy;
