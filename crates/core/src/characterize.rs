use std::time::Instant;

use emx_isa::Program;
use emx_obs::json::Value;
use emx_obs::Collector;
use emx_regress::{Dataset, FitMethod, FitOptions, LinearFit};
use emx_rtlpower::RtlEnergyEstimator;
use emx_sim::{Interp, ProcConfig};
use emx_tie::ExtensionSet;

use crate::{CoreError, EnergyMacroModel, ModelSpec};

fn elapsed_micros(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// One test program of the characterization suite: its name, its code,
/// and the extension set of the custom processor it runs on.
///
/// "While custom processors are generated during characterization, they
/// are not needed for using the macro-model" — each training case carries
/// its own extended configuration, and the fitted model generalizes to
/// any other.
#[derive(Debug, Clone, Copy)]
pub struct TrainingCase<'a> {
    /// Display name (appears in the fitting-error report, Fig. 3).
    pub name: &'a str,
    /// The assembled test program.
    pub program: &'a Program,
    /// The extension set it was assembled against.
    pub ext: &'a ExtensionSet,
}

/// The output of characterization: the fitted macro-model plus the full
/// regression diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Characterization {
    /// The fitted macro-model (ready for [`EnergyMacroModel::estimate`]).
    pub model: EnergyMacroModel,
    /// Regression diagnostics: per-test-program fitting errors (the data
    /// behind Fig. 3), RMS and maximum error, R².
    pub fit: LinearFit,
}

/// Per-phase timing and fit quality of one training case, gathered by
/// [`Characterizer::characterize_instrumented`].
#[derive(Debug, Clone, PartialEq)]
pub struct CaseReport {
    /// Training-case name.
    pub name: String,
    /// Simulated cycles of the case on the fast ISS.
    pub cycles: u64,
    /// Wall-clock microseconds of the fast ISS + resource-usage analysis.
    pub iss_micros: u64,
    /// Wall-clock microseconds of the RTL-level reference estimation.
    pub reference_micros: u64,
    /// The measured (dependent-variable) energy, in picojoules.
    pub measured_picojoules: f64,
    /// Signed percent fitting error of this case (Fig. 3 data point).
    pub percent_error: f64,
}

/// Phase timings and fit quality of one characterization run — the
/// document behind `emx-characterize --report`.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizeReport {
    /// One entry per training case, in suite order.
    pub cases: Vec<CaseReport>,
    /// Total wall-clock microseconds of fast instruction-set simulation.
    pub simulate_micros: u64,
    /// Total wall-clock microseconds of RTL-level reference estimation.
    pub reference_micros: u64,
    /// Wall-clock microseconds of the least-squares solve.
    pub solve_micros: u64,
    /// Root-mean-square percent fitting error over the suite.
    pub rms_percent_error: f64,
    /// Largest absolute percent fitting error over the suite.
    pub max_abs_percent_error: f64,
    /// Coefficient of determination of the fit.
    pub r_squared: f64,
    /// Reference wall-time divided by ISS wall-time — how much faster the
    /// macro-model's simulation side is than the path it replaces (the
    /// paper's §V speedup, measured on this host for this suite).
    pub speedup: f64,
}

impl CharacterizeReport {
    /// Serializes the report with the stable schema
    /// `emx.characterize-report/1`: fit quality (`rms_percent_error`,
    /// `max_abs_percent_error`, `r_squared`), phase timings in
    /// microseconds (`timing_us.{iss_simulate, reference_estimate,
    /// solve}`), the measured `speedup`, and one `cases[]` entry per
    /// training case (`name`, `cycles`, `iss_us`, `reference_us`,
    /// `measured_pj`, `percent_error`).
    pub fn to_json(&self) -> Value {
        let mut doc = Value::object();
        doc.set("schema", "emx.characterize-report/1");

        let mut fit = Value::object();
        fit.set("rms_percent_error", self.rms_percent_error);
        fit.set("max_abs_percent_error", self.max_abs_percent_error);
        fit.set("r_squared", self.r_squared);
        doc.set("fit", fit);

        let mut timing = Value::object();
        timing.set("iss_simulate", self.simulate_micros);
        timing.set("reference_estimate", self.reference_micros);
        timing.set("solve", self.solve_micros);
        doc.set("timing_us", timing);
        doc.set("speedup", self.speedup);

        let mut cases = Value::array();
        for case in &self.cases {
            let mut entry = Value::object();
            entry.set("name", case.name.as_str());
            entry.set("cycles", case.cycles);
            entry.set("iss_us", case.iss_micros);
            entry.set("reference_us", case.reference_micros);
            entry.set("measured_pj", case.measured_picojoules);
            entry.set("percent_error", case.percent_error);
            cases.push(entry);
        }
        doc.set("cases", cases);
        doc
    }
}

/// Runs the paper's characterization flow (steps 1–8 of Fig. 2).
///
/// For every training case, the characterizer
///
/// 1. cross-"compiles" and simulates the test program on the fast ISS to
///    gather the macro-model's independent variables (instruction-set
///    simulation + dynamic resource-usage analysis),
/// 2. measures the dependent variable — the program's energy on the
///    extended processor — with the RTL-level reference estimator,
///
/// and finally solves the resulting linear system by least squares.
#[derive(Debug, Clone, Default)]
pub struct Characterizer {
    config: ProcConfig,
    spec: ModelSpec,
    estimator: RtlEnergyEstimator,
    fit_options: FitOptions,
    max_cycles: u64,
}

impl Characterizer {
    /// Creates a characterizer for the paper's full template on the given
    /// base-processor configuration.
    pub fn new(config: ProcConfig) -> Self {
        Characterizer {
            config,
            spec: ModelSpec::paper(),
            estimator: RtlEnergyEstimator::new(),
            fit_options: FitOptions {
                method: FitMethod::Qr,
                ridge: 0.0,
            },
            max_cycles: u64::from(u32::MAX),
        }
    }

    /// Uses a different macro-model template (ablation studies).
    pub fn with_spec(mut self, spec: ModelSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Uses a different reference estimator (sensitivity studies).
    pub fn with_estimator(mut self, estimator: RtlEnergyEstimator) -> Self {
        self.estimator = estimator;
        self
    }

    /// Uses the paper's pseudo-inverse (normal-equations) solver instead
    /// of QR, optionally with ridge regularization.
    pub fn with_fit_options(mut self, options: FitOptions) -> Self {
        self.fit_options = options;
        self
    }

    /// The template in use.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// Characterizes the processor over the given suite.
    ///
    /// # Errors
    ///
    /// * [`CoreError::Sim`] if a test program fails to run (on either
    ///   simulation path),
    /// * [`CoreError::Regress`] if the system cannot be solved — fewer
    ///   programs than template variables, or a variable never exercised
    ///   by the suite (the paper: the suite must "cover the instruction
    ///   space" and "all the custom hardware library components").
    pub fn characterize(&self, cases: &[TrainingCase<'_>]) -> Result<Characterization, CoreError> {
        self.characterize_instrumented(cases, &mut Collector::disabled())
            .map(|(characterization, _)| characterization)
    }

    /// Like [`Characterizer::characterize`], with the whole flow
    /// instrumented on `obs` and a [`CharacterizeReport`] of per-phase
    /// wall-clock timings and per-case fit quality returned alongside.
    ///
    /// Spans: one `characterize` span around the run, one `case:<name>`
    /// span per training case (wrapping an `iss-simulate` span and the
    /// reference estimator's own `rtl-*` spans), and a
    /// `least-squares-solve` span around the fit. Histograms:
    /// `characterize.case_cycles`. The collector never influences the
    /// result — [`Characterizer::characterize`] is this method with a
    /// disabled collector, minus the report.
    ///
    /// # Errors
    ///
    /// As for [`Characterizer::characterize`].
    pub fn characterize_instrumented(
        &self,
        cases: &[TrainingCase<'_>],
        obs: &mut Collector,
    ) -> Result<(Characterization, CharacterizeReport), CoreError> {
        self.characterize_with_dataset(cases, obs)
            .map(|(characterization, report, _)| (characterization, report))
    }

    /// Like [`Characterizer::characterize_instrumented`], additionally
    /// returning the assembled regression [`Dataset`] — the exact design
    /// matrix and measured energies the model was fitted from — so
    /// callers can run suite-quality gates (`emx-coverage`) on it without
    /// a second simulation pass.
    ///
    /// # Errors
    ///
    /// As for [`Characterizer::characterize`].
    pub fn characterize_with_dataset(
        &self,
        cases: &[TrainingCase<'_>],
        obs: &mut Collector,
    ) -> Result<(Characterization, CharacterizeReport, Dataset), CoreError> {
        let whole = obs.begin("characterize");
        let (dataset, mut case_reports) = self.simulate_cases(cases, obs)?;

        let solve_started = Instant::now();
        let solve_span = obs.begin("least-squares-solve");
        let fit = dataset.fit(self.fit_options)?;
        obs.end(solve_span);
        let solve_micros = elapsed_micros(solve_started);
        obs.end(whole);

        // `Dataset` preserves suite order, so sample errors line up with
        // the per-case reports by index.
        for (case, err) in case_reports.iter_mut().zip(fit.sample_errors()) {
            case.percent_error = err.percent;
        }
        let simulate_micros: u64 = case_reports.iter().map(|c| c.iss_micros).sum();
        let reference_micros: u64 = case_reports.iter().map(|c| c.reference_micros).sum();
        let report = CharacterizeReport {
            cases: case_reports,
            simulate_micros,
            reference_micros,
            solve_micros,
            rms_percent_error: fit.rms_percent_error(),
            max_abs_percent_error: fit.max_abs_percent_error(),
            r_squared: fit.r_squared(),
            speedup: reference_micros as f64 / simulate_micros.max(1) as f64,
        };

        let model = EnergyMacroModel::new(self.spec, fit.coefficients().to_vec());
        Ok((Characterization { model, fit }, report, dataset))
    }

    /// Runs steps 1–7 only: simulates every training case and assembles
    /// the regression dataset (variables + measured energies) without
    /// fitting it. Exposed so suite-quality diagnostics
    /// ([`emx_regress::diagnostics`]) can inspect the design matrix.
    ///
    /// # Errors
    ///
    /// [`CoreError::Sim`] if a test program fails to run on either
    /// simulation path.
    pub fn build_dataset(&self, cases: &[TrainingCase<'_>]) -> Result<Dataset, CoreError> {
        self.simulate_cases(cases, &mut Collector::disabled())
            .map(|(dataset, _)| dataset)
    }

    /// The shared steps-1–7 loop: per case, ISS simulation for the
    /// independent variables and reference estimation for the dependent
    /// one, with spans and timings on `obs`. Case reports come back with
    /// `percent_error` unset (no fit has happened yet).
    fn simulate_cases(
        &self,
        cases: &[TrainingCase<'_>],
        obs: &mut Collector,
    ) -> Result<(Dataset, Vec<CaseReport>), CoreError> {
        let mut dataset = Dataset::new(self.spec.variable_names());
        let mut case_reports = Vec::with_capacity(cases.len());
        for case in cases {
            let case_span = obs.begin(format!("case:{}", case.name));

            // Independent variables: fast ISS + resource-usage analysis.
            let iss_started = Instant::now();
            let iss_span = obs.begin("iss-simulate");
            let mut iss = Interp::new(case.program, case.ext, self.config.clone());
            let run = iss.run(self.max_cycles);
            obs.end(iss_span);
            let iss_micros = elapsed_micros(iss_started);
            let run = run.map_err(|source| CoreError::Sim {
                program: case.name.to_owned(),
                source,
            })?;
            let x = self.spec.variables(&run.stats);

            // Dependent variable: RTL-level energy of the extended
            // processor (the "synthesize + ModelSim + WattWatcher" path).
            let reference_started = Instant::now();
            let report = self
                .estimator
                .estimate_traced(
                    case.program,
                    case.ext,
                    self.config.clone(),
                    self.max_cycles,
                    obs,
                )
                .map_err(|source| CoreError::Sim {
                    program: case.name.to_owned(),
                    source,
                })?;
            let reference_micros = elapsed_micros(reference_started);

            obs.end(case_span);
            obs.record("characterize.case_cycles", run.stats.total_cycles);

            dataset.push_sample(case.name, &x, report.total.as_picojoules())?;
            case_reports.push(CaseReport {
                name: case.name.to_owned(),
                cycles: run.stats.total_cycles,
                iss_micros,
                reference_micros,
                measured_picojoules: report.total.as_picojoules(),
                percent_error: 0.0,
            });
        }
        Ok((dataset, case_reports))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emx_isa::asm::Assembler;

    /// A small synthetic suite of base-ISA-only programs, diverse enough
    /// to identify the instruction-level coefficients. With no custom
    /// instructions in any program the structural variables are all-zero
    /// columns, so the tests use the instruction-level-only spec.
    fn base_suite() -> Vec<(String, Program)> {
        let srcs: Vec<(&str, String)> = vec![
            (
                "arith",
                "movi a2, 200\nl: addi a2, a2, -1\nbnez a2, l\nhalt".into(),
            ),
            (
                "mixed",
                "movi a2, 100\nmovi a3, 0\nl: add a3, a3, a2\nxor a4, a3, a2\n\
                 slli a5, a4, 2\naddi a2, a2, -1\nbnez a2, l\nhalt"
                    .into(),
            ),
            (
                "loads",
                ".data\nbuf: .space 256\n.text\nmovi a2, buf\nmovi a3, 64\n\
                 l: l32i a4, 0(a2)\naddi a2, a2, 4\naddi a3, a3, -1\nbnez a3, l\nhalt"
                    .into(),
            ),
            (
                "stores",
                ".data\nbuf: .space 256\n.text\nmovi a2, buf\nmovi a3, 64\nmovi a4, 7\n\
                 l: s32i a4, 0(a2)\naddi a2, a2, 4\naddi a3, a3, -1\nbnez a3, l\nhalt"
                    .into(),
            ),
            (
                "calls",
                "movi a2, 40\nl: call f\naddi a2, a2, -1\nbnez a2, l\nhalt\nf: ret".into(),
            ),
            (
                "branches",
                "movi a2, 100\nmovi a3, 0\nl: andi a4, a2, 1\nbeqz a4, even\naddi a3, a3, 1\n\
                 even: addi a2, a2, -1\nbnez a2, l\nhalt"
                    .into(),
            ),
            (
                "interlocks",
                ".data\nv: .word 3\n.text\nmovi a2, v\nmovi a3, 50\n\
                 l: l32i a4, 0(a2)\nadd a5, a4, a4\nmul a6, a5, a4\nadd a7, a6, a5\n\
                 addi a3, a3, -1\nbnez a3, l\nhalt"
                    .into(),
            ),
            (
                "strided",
                "movi a2, 0x40000\nmovi a3, 200\nl: l32i a4, 0(a2)\naddi a2, a2, 64\n\
                 addi a3, a3, -1\nbnez a3, l\nhalt"
                    .into(),
            ),
            (
                "uncached",
                ".uncached\nmovi a2, 60\nl: addi a2, a2, -1\nbnez a2, l\nhalt".into(),
            ),
            (
                "shifts",
                "movi a2, 150\nmovi a3, 0x1234\nl: slli a4, a3, 3\nsrli a5, a3, 2\n\
                 ror a6, a3, a2\naddi a2, a2, -1\nbnez a2, l\nhalt"
                    .into(),
            ),
            (
                "muls",
                "movi a2, 120\nmovi a3, 77\nl: mul a4, a3, a2\nmulh a5, a4, a3\n\
                 addi a2, a2, -1\nbnez a2, l\nhalt"
                    .into(),
            ),
            (
                "jumps",
                "movi a2, 80\nl: j step\nstep: addi a2, a2, -1\nbnez a2, l\nhalt".into(),
            ),
        ];
        let mut suite: Vec<(String, Program)> = srcs
            .into_iter()
            .map(|(name, src)| (name.to_owned(), Assembler::new().assemble(&src).unwrap()))
            .collect();
        // I-cache-capacity programs: loop bodies larger than the 16 KB
        // cache so `n_icm` has real variance across the suite.
        for (name, body, iters) in [("icache_a", 5000, 8), ("icache_b", 7000, 4)] {
            let mut src = String::from("movi a2, ");
            src.push_str(&format!("{iters}\nl:\n"));
            for i in 0..body {
                src.push_str(["add a3, a3, a2\n", "xor a4, a4, a2\n", "addi a5, a5, 3\n"][i % 3]);
            }
            src.push_str("addi a2, a2, -1\nbnez a2, l\nhalt\n");
            suite.push((name.to_owned(), Assembler::new().assemble(&src).unwrap()));
        }
        suite
    }

    #[test]
    fn characterizes_base_processor_accurately() {
        let suite = base_suite();
        let ext = ExtensionSet::empty();
        let cases: Vec<TrainingCase<'_>> = suite
            .iter()
            .map(|(name, p)| TrainingCase {
                name,
                program: p,
                ext: &ext,
            })
            .collect();
        let result = Characterizer::new(ProcConfig::default())
            .with_spec(ModelSpec::instruction_level_only())
            .characterize(&cases)
            .unwrap();

        // The reference model is approximately linear in the template
        // variables, so the fit should be tight (paper: RMS 3.8%).
        assert!(
            result.fit.rms_percent_error() < 10.0,
            "rms = {}",
            result.fit.rms_percent_error()
        );
        assert!(result.fit.r_squared() > 0.99);

        // Coefficients should be positive energies with sane ordering:
        // a cache miss costs far more than one arithmetic cycle.
        let a = result.model.coefficient("alpha_A").unwrap();
        let icm = result.model.coefficient("beta_icm").unwrap();
        assert!(a > 0.0, "alpha_A = {a}");
        assert!(icm > a, "beta_icm = {icm} vs alpha_A = {a}");
    }

    #[test]
    fn estimation_tracks_reference_on_held_out_program(// Held-out: not in the training suite.
    ) {
        let suite = base_suite();
        let ext = ExtensionSet::empty();
        let cases: Vec<TrainingCase<'_>> = suite
            .iter()
            .map(|(name, p)| TrainingCase {
                name,
                program: p,
                ext: &ext,
            })
            .collect();
        let result = Characterizer::new(ProcConfig::default())
            .with_spec(ModelSpec::instruction_level_only())
            .characterize(&cases)
            .unwrap();

        let held_out = Assembler::new()
            .assemble(
                ".data\nbuf: .space 400\n.text\nmovi a2, buf\nmovi a3, 100\nmovi a5, 0\n\
                 l: l32i a4, 0(a2)\nadd a5, a5, a4\ns32i a5, 0(a2)\naddi a2, a2, 4\n\
                 addi a3, a3, -1\nbnez a3, l\nhalt",
            )
            .unwrap();
        let est = result
            .model
            .estimate(&held_out, &ext, ProcConfig::default())
            .unwrap();
        let truth = RtlEnergyEstimator::new()
            .estimate(&held_out, &ext, ProcConfig::default())
            .unwrap();
        let err = est.energy.percent_error_vs(truth.total).abs();
        assert!(err < 15.0, "held-out error {err}%");
    }

    #[test]
    fn instrumented_characterization_reports_phases_and_changes_nothing() {
        let suite = base_suite();
        let ext = ExtensionSet::empty();
        let cases: Vec<TrainingCase<'_>> = suite
            .iter()
            .map(|(name, p)| TrainingCase {
                name,
                program: p,
                ext: &ext,
            })
            .collect();
        let characterizer = Characterizer::new(ProcConfig::default())
            .with_spec(ModelSpec::instruction_level_only());

        let plain = characterizer.characterize(&cases).unwrap();
        let mut obs = Collector::new();
        let (instrumented, report) = characterizer
            .characterize_instrumented(&cases, &mut obs)
            .unwrap();

        // Observability must not change the fitted model.
        assert_eq!(plain.model, instrumented.model);

        // One case report per training case, in order, with real work in
        // both phases and the fit errors wired through.
        assert_eq!(report.cases.len(), cases.len());
        for (case, expected) in report.cases.iter().zip(&cases) {
            assert_eq!(case.name, expected.name);
            assert!(case.cycles > 0);
            assert!(case.measured_picojoules > 0.0);
        }
        assert!(report.cases.iter().any(|c| c.percent_error != 0.0));
        assert!(report.simulate_micros > 0);
        assert!(report.reference_micros > 0);
        assert!(
            report.speedup > 1.0,
            "reference flow must be slower than the ISS (speedup {})",
            report.speedup
        );
        assert!((report.r_squared - plain.fit.r_squared()).abs() < 1e-12);

        // Spans: the top-level phase, one per case, the solve, and the
        // reference estimator's two phases nested per case.
        let spans = obs.spans();
        assert_eq!(spans[0].name, "characterize");
        assert_eq!(
            spans.iter().filter(|s| s.name.starts_with("case:")).count(),
            cases.len()
        );
        assert_eq!(
            spans.iter().filter(|s| s.name == "iss-simulate").count(),
            cases.len()
        );
        assert_eq!(
            spans
                .iter()
                .filter(|s| s.name == "rtl-energy-integration")
                .count(),
            cases.len()
        );
        assert!(spans.iter().any(|s| s.name == "least-squares-solve"));
        assert_eq!(
            obs.histogram("characterize.case_cycles").unwrap().count(),
            cases.len() as u64
        );

        // The JSON report round-trips and keeps the schema tag.
        let doc = emx_obs::json::Value::parse(&report.to_json().to_string()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(emx_obs::json::Value::as_str),
            Some("emx.characterize-report/1")
        );
        assert_eq!(
            doc.get("cases")
                .and_then(emx_obs::json::Value::as_array)
                .map(|a| a.len()),
            Some(cases.len())
        );
    }

    #[test]
    fn too_few_programs_is_a_regression_error() {
        let suite = base_suite();
        let ext = ExtensionSet::empty();
        let cases: Vec<TrainingCase<'_>> = suite
            .iter()
            .take(3)
            .map(|(name, p)| TrainingCase {
                name,
                program: p,
                ext: &ext,
            })
            .collect();
        let result = Characterizer::new(ProcConfig::default())
            .with_spec(ModelSpec::instruction_level_only())
            .characterize(&cases);
        assert!(matches!(result, Err(CoreError::Regress(_))));
    }

    #[test]
    fn pseudo_inverse_matches_qr() {
        let suite = base_suite();
        let ext = ExtensionSet::empty();
        let cases: Vec<TrainingCase<'_>> = suite
            .iter()
            .map(|(name, p)| TrainingCase {
                name,
                program: p,
                ext: &ext,
            })
            .collect();
        let spec = ModelSpec::instruction_level_only();
        let qr = Characterizer::new(ProcConfig::default())
            .with_spec(spec)
            .characterize(&cases)
            .unwrap();
        let ne = Characterizer::new(ProcConfig::default())
            .with_spec(spec)
            .with_fit_options(FitOptions {
                method: FitMethod::NormalEquations,
                ridge: 0.0,
            })
            .characterize(&cases)
            .unwrap();
        for (a, b) in qr.model.coefficients().iter().zip(ne.model.coefficients()) {
            assert!((a - b).abs() < 1e-3 * a.abs().max(1.0), "{a} vs {b}");
        }
    }
}
