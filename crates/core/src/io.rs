//! Plain-text persistence for characterized macro-models.
//!
//! Characterization is the expensive, once-per-base-processor step; the
//! resulting model is 21 numbers. This module gives it a stable,
//! human-auditable text format so a model characterized by one tool run
//! (e.g. `emx-characterize`) can be loaded instantly by another
//! (e.g. `emx-run --model`):
//!
//! ```text
//! # emx energy macro-model v1
//! spec structural=true ci=true width=true arith=clustered
//! alpha_A 442.638917
//! alpha_L 607.254110
//! …
//! ```

use std::error::Error;
use std::fmt;

use crate::{ArithGranularity, EnergyMacroModel, ModelSpec};

/// Error returned by [`EnergyMacroModel::from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseModelError {
    /// The version header is missing or unsupported.
    BadHeader,
    /// The `spec …` line is missing or malformed.
    BadSpec(String),
    /// A coefficient line failed to parse.
    BadCoefficient(String),
    /// A coefficient required by the spec is missing, or an unknown name
    /// appeared.
    NameMismatch(String),
}

impl fmt::Display for ParseModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseModelError::BadHeader => write!(f, "missing or unsupported model header"),
            ParseModelError::BadSpec(line) => write!(f, "bad spec line `{line}`"),
            ParseModelError::BadCoefficient(line) => write!(f, "bad coefficient line `{line}`"),
            ParseModelError::NameMismatch(name) => {
                write!(f, "coefficient set does not match the spec (at `{name}`)")
            }
        }
    }
}

impl Error for ParseModelError {}

const HEADER: &str = "# emx energy macro-model v1";

impl EnergyMacroModel {
    /// Serializes the model to the stable text format.
    pub fn to_text(&self) -> String {
        let spec = self.spec();
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!(
            "spec structural={} ci={} width={} arith={}\n",
            spec.structural,
            spec.ci_side_effect,
            spec.width_complexity,
            match spec.arith {
                ArithGranularity::Clustered => "clustered",
                ArithGranularity::PerUnit => "per_unit",
            }
        ));
        for (name, value) in self.coefficient_table() {
            out.push_str(&format!("{name} {value:.9}\n"));
        }
        out
    }

    /// Parses a model previously written by [`EnergyMacroModel::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a [`ParseModelError`] describing the first malformed line,
    /// or a mismatch between the declared spec and the coefficient names.
    pub fn from_text(text: &str) -> Result<Self, ParseModelError> {
        let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
        if lines.next() != Some(HEADER) {
            return Err(ParseModelError::BadHeader);
        }
        let spec_line = lines.next().ok_or(ParseModelError::BadHeader)?;
        let spec = parse_spec(spec_line)?;

        let expected = spec.variable_names();
        let mut coefficients = Vec::with_capacity(expected.len());
        // Not `zip`: when the expected side runs out first, `Zip` has
        // already consumed (and would discard) one extra source line,
        // which the trailing-garbage check below needs to see.
        for want in &expected {
            let Some(line) = lines.next() else { break };
            let (name, value) = line
                .split_once(' ')
                .ok_or_else(|| ParseModelError::BadCoefficient(line.to_owned()))?;
            if name != want {
                return Err(ParseModelError::NameMismatch(name.to_owned()));
            }
            let value: f64 = value
                .trim()
                .parse()
                .map_err(|_| ParseModelError::BadCoefficient(line.to_owned()))?;
            coefficients.push(value);
        }
        if coefficients.len() != expected.len() {
            return Err(ParseModelError::NameMismatch(format!(
                "expected {} coefficients, found {}",
                expected.len(),
                coefficients.len()
            )));
        }
        if let Some(extra) = lines.next() {
            return Err(ParseModelError::NameMismatch(extra.to_owned()));
        }
        Ok(EnergyMacroModel::new(spec, coefficients))
    }
}

fn parse_spec(line: &str) -> Result<ModelSpec, ParseModelError> {
    let err = || ParseModelError::BadSpec(line.to_owned());
    let rest = line.strip_prefix("spec ").ok_or_else(err)?;
    let mut spec = ModelSpec::paper();
    for field in rest.split_whitespace() {
        let (key, value) = field.split_once('=').ok_or_else(err)?;
        match key {
            "structural" => spec.structural = value.parse().map_err(|_| err())?,
            "ci" => spec.ci_side_effect = value.parse().map_err(|_| err())?,
            "width" => spec.width_complexity = value.parse().map_err(|_| err())?,
            "arith" => {
                spec.arith = match value {
                    "clustered" => ArithGranularity::Clustered,
                    "per_unit" => ArithGranularity::PerUnit,
                    _ => return Err(err()),
                }
            }
            _ => return Err(err()),
        }
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_model(spec: ModelSpec) -> EnergyMacroModel {
        let coefficients: Vec<f64> = (0..spec.len()).map(|i| 100.5 + i as f64 * 3.25).collect();
        EnergyMacroModel::new(spec, coefficients)
    }

    #[test]
    fn round_trips_the_paper_template() {
        let model = sample_model(ModelSpec::paper());
        let text = model.to_text();
        let back = EnergyMacroModel::from_text(&text).unwrap();
        assert_eq!(back, model);
    }

    #[test]
    fn round_trips_every_spec_variant() {
        for structural in [true, false] {
            for ci in [true, false] {
                for width in [true, false] {
                    for arith in [ArithGranularity::Clustered, ArithGranularity::PerUnit] {
                        let spec = ModelSpec {
                            structural,
                            ci_side_effect: ci,
                            width_complexity: width,
                            arith,
                        };
                        let model = sample_model(spec);
                        let back = EnergyMacroModel::from_text(&model.to_text()).unwrap();
                        assert_eq!(back, model);
                    }
                }
            }
        }
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert_eq!(
            EnergyMacroModel::from_text("nonsense"),
            Err(ParseModelError::BadHeader)
        );
        let model = sample_model(ModelSpec::paper());
        let text = model.to_text();

        let truncated: String = text.lines().take(5).collect::<Vec<_>>().join("\n");
        assert!(matches!(
            EnergyMacroModel::from_text(&truncated),
            Err(ParseModelError::NameMismatch(_))
        ));

        let corrupted = text.replace("alpha_L", "alpha_Q");
        assert!(matches!(
            EnergyMacroModel::from_text(&corrupted),
            Err(ParseModelError::NameMismatch(_))
        ));

        let bad_value = text.replace("alpha_A 100.500000000", "alpha_A not_a_number");
        assert!(matches!(
            EnergyMacroModel::from_text(&bad_value),
            Err(ParseModelError::BadCoefficient(_))
        ));

        let extra = format!("{text}bogus 1.0\n");
        assert!(matches!(
            EnergyMacroModel::from_text(&extra),
            Err(ParseModelError::NameMismatch(_))
        ));
    }

    #[test]
    fn text_is_stable_and_auditable() {
        let model = sample_model(ModelSpec::paper());
        let text = model.to_text();
        assert!(text.starts_with("# emx energy macro-model v1\n"));
        assert!(text.contains("spec structural=true ci=true width=true arith=clustered"));
        assert!(text.contains("alpha_A 100.5"));
        assert_eq!(text.lines().count(), 2 + 21);
    }
}
