//! The unified error taxonomy for the estimation pipeline.
//!
//! Every crate in the workspace keeps its own precise error enum
//! ([`SimError`], [`RegressError`], …) — those are the types library code
//! matches on. [`EmxError`] is the *boundary* type: anything that crosses a
//! crate or process boundary (CLI `main`s, long-running exploration loops,
//! persisted reports) converts into it, gaining three things:
//!
//! * a coarse [`ErrorKind`] for routing (retry? quarantine? abort?),
//! * a stable machine-readable `code` string (`sim.invalid_pc`,
//!   `cache.corrupt`, …) safe to grep in logs and match in tooling,
//! * full `source()` chaining back to the precise per-crate error.
//!
//! The kinds also define the CLI exit-code contract (see
//! [`EmxError::exit_code`]): usage errors exit 2, input/data errors exit 1,
//! internal errors (bugs, contained panics) exit 3.

use std::error::Error;
use std::fmt;

use emx_regress::RegressError;
use emx_sim::SimError;
use emx_tie::TieError;

/// Coarse classification of a failure, for routing and exit codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// The command line itself was malformed (unknown flag, missing
    /// operand). Exit code 2.
    Usage,
    /// A file could not be read or written. Exit code 1.
    Io,
    /// An input file was syntactically or semantically invalid (assembly,
    /// TIE source, model text, cache/report JSON). Exit code 1.
    Parse,
    /// A simulation failed (bad program counter, cycle budget, …).
    /// Exit code 1.
    Sim,
    /// The regression / model-fitting machinery failed (singular system,
    /// under-determined fit, …). Exit code 1.
    Model,
    /// A persisted cache was corrupt or stale. Recoverable by quarantine
    /// and rebuild; fatal only when recovery is impossible. Exit code 1.
    Cache,
    /// A candidate space could not be enumerated as requested. Exit code 1.
    Space,
    /// A worker failed while evaluating one candidate — including a
    /// contained panic. The batch survives; the candidate is reported.
    /// Exit code 3 when fatal.
    Worker,
    /// An internal invariant broke (a bug in this codebase, not in the
    /// inputs). Exit code 3.
    Internal,
}

impl ErrorKind {
    /// The process exit code the CLI contract assigns to this kind:
    /// 2 for usage errors, 3 for internal errors (including contained
    /// worker failures), 1 for everything the user's inputs can cause.
    pub fn exit_code(self) -> u8 {
        match self {
            ErrorKind::Usage => 2,
            ErrorKind::Worker | ErrorKind::Internal => 3,
            _ => 1,
        }
    }

    /// Stable lowercase name (`usage`, `io`, …) used as a code prefix.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Usage => "usage",
            ErrorKind::Io => "io",
            ErrorKind::Parse => "parse",
            ErrorKind::Sim => "sim",
            ErrorKind::Model => "model",
            ErrorKind::Cache => "cache",
            ErrorKind::Space => "space",
            ErrorKind::Worker => "worker",
            ErrorKind::Internal => "internal",
        }
    }
}

/// The unified boundary error: kind + stable code + message + source chain.
///
/// Construct one with the kind-named constructors ([`EmxError::usage`],
/// [`EmxError::io`], …) or by converting a per-crate error with `?` /
/// `From`. Conversions assign the most precise code for each source
/// variant, so `match`-free callers can still dispatch on
/// [`EmxError::code`].
#[derive(Debug)]
pub struct EmxError {
    kind: ErrorKind,
    code: &'static str,
    message: String,
    source: Option<Box<dyn Error + Send + Sync + 'static>>,
}

impl EmxError {
    /// Creates an error of the given kind with a stable machine code.
    pub fn new(kind: ErrorKind, code: &'static str, message: impl Into<String>) -> Self {
        EmxError {
            kind,
            code,
            message: message.into(),
            source: None,
        }
    }

    /// A malformed command line. Exit code 2.
    pub fn usage(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Usage, "usage.args", message)
    }

    /// A failed read/write of `path`. Exit code 1.
    pub fn io(path: &str, err: &std::io::Error) -> Self {
        Self::new(ErrorKind::Io, "io.file", format!("`{path}`: {err}"))
    }

    /// An invalid input file. Exit code 1.
    pub fn parse(code: &'static str, message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Parse, code, message)
    }

    /// A broken internal invariant. Exit code 3.
    pub fn internal(code: &'static str, message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Internal, code, message)
    }

    /// Attaches the underlying cause (kept alive for `source()` chains).
    #[must_use]
    pub fn with_source(mut self, source: impl Error + Send + Sync + 'static) -> Self {
        self.source = Some(Box::new(source));
        self
    }

    /// Prefixes the human-readable message with `context` (": "-joined),
    /// leaving kind, code and source untouched.
    #[must_use]
    pub fn context(mut self, context: impl fmt::Display) -> Self {
        self.message = format!("{context}: {}", self.message);
        self
    }

    /// The coarse classification.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The stable machine-readable code (e.g. `sim.invalid_pc`). Codes are
    /// append-only across versions: tooling may match on them.
    pub fn code(&self) -> &'static str {
        self.code
    }

    /// The human-readable message (without the code).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The process exit code for this error under the CLI contract.
    pub fn exit_code(&self) -> u8 {
        self.kind.exit_code()
    }
}

impl fmt::Display for EmxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.message, self.code)
    }
}

impl Error for EmxError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        self.source.as_deref().map(|e| e as &(dyn Error + 'static))
    }
}

/// The stable code for one simulator error variant.
pub fn sim_error_code(e: &SimError) -> &'static str {
    match e {
        SimError::InvalidPc(_) => "sim.invalid_pc",
        SimError::UnknownCustom(_) => "sim.unknown_custom",
        SimError::Unaligned { .. } => "sim.unaligned",
        SimError::CycleLimit(_) => "sim.cycle_limit",
        SimError::Graph(_) => "sim.graph",
        _ => "sim.other",
    }
}

/// The stable code for one regression error variant.
pub fn regress_error_code(e: &RegressError) -> &'static str {
    match e {
        RegressError::ShapeMismatch { .. } => "model.shape_mismatch",
        RegressError::Singular => "model.singular",
        RegressError::UnknownVariable(_) => "model.unknown_variable",
        RegressError::Underdetermined { .. } => "model.underdetermined",
        RegressError::SampleWidth { .. } => "model.sample_width",
        RegressError::NonFinite => "model.non_finite",
        _ => "model.other",
    }
}

impl From<SimError> for EmxError {
    fn from(e: SimError) -> Self {
        EmxError::new(ErrorKind::Sim, sim_error_code(&e), e.to_string()).with_source(e)
    }
}

impl From<RegressError> for EmxError {
    fn from(e: RegressError) -> Self {
        EmxError::new(ErrorKind::Model, regress_error_code(&e), e.to_string()).with_source(e)
    }
}

impl From<TieError> for EmxError {
    fn from(e: TieError) -> Self {
        EmxError::parse("parse.tie", e.to_string()).with_source(e)
    }
}

impl From<emx_tie::lang::LangError> for EmxError {
    fn from(e: emx_tie::lang::LangError) -> Self {
        EmxError::parse("parse.tie", e.to_string()).with_source(e)
    }
}

impl From<CoreError> for EmxError {
    fn from(e: CoreError) -> Self {
        let (kind, code) = match &e {
            CoreError::Sim { source, .. } => (ErrorKind::Sim, sim_error_code(source)),
            CoreError::Regress(source) => (ErrorKind::Model, regress_error_code(source)),
        };
        EmxError::new(kind, code, e.to_string()).with_source(e)
    }
}

impl From<crate::ParseModelError> for EmxError {
    fn from(e: crate::ParseModelError) -> Self {
        EmxError::parse("parse.model", e.to_string()).with_source(e)
    }
}

/// Errors from the characterization / estimation flows.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A test program failed to simulate (named for diagnosis).
    Sim {
        /// The test program that failed.
        program: String,
        /// The underlying simulator error.
        source: SimError,
    },
    /// The regression could not be solved (usually: too few test programs
    /// for the template, or a macro-model variable never exercised by the
    /// suite).
    Regress(RegressError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Sim { program, source } => {
                write!(f, "simulation of `{program}` failed: {source}")
            }
            CoreError::Regress(e) => write!(f, "regression failed: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Sim { source, .. } => Some(source),
            CoreError::Regress(e) => Some(e),
        }
    }
}

impl From<RegressError> for CoreError {
    fn from(e: RegressError) -> Self {
        CoreError::Regress(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_map_to_the_exit_code_contract() {
        assert_eq!(ErrorKind::Usage.exit_code(), 2);
        assert_eq!(ErrorKind::Io.exit_code(), 1);
        assert_eq!(ErrorKind::Parse.exit_code(), 1);
        assert_eq!(ErrorKind::Sim.exit_code(), 1);
        assert_eq!(ErrorKind::Model.exit_code(), 1);
        assert_eq!(ErrorKind::Cache.exit_code(), 1);
        assert_eq!(ErrorKind::Space.exit_code(), 1);
        assert_eq!(ErrorKind::Worker.exit_code(), 3);
        assert_eq!(ErrorKind::Internal.exit_code(), 3);
    }

    #[test]
    fn conversions_preserve_kind_code_and_source() {
        let e: EmxError = SimError::InvalidPc(0x44).into();
        assert_eq!(e.kind(), ErrorKind::Sim);
        assert_eq!(e.code(), "sim.invalid_pc");
        assert!(e.source().is_some(), "source chain must survive");
        assert!(e.to_string().contains("[sim.invalid_pc]"));

        let e: EmxError = RegressError::Singular.into();
        assert_eq!(e.kind(), ErrorKind::Model);
        assert_eq!(e.code(), "model.singular");

        let e: EmxError = CoreError::Sim {
            program: "p".into(),
            source: SimError::CycleLimit(10),
        }
        .into();
        assert_eq!(e.kind(), ErrorKind::Sim);
        assert_eq!(e.code(), "sim.cycle_limit");
        assert!(e.message().contains("`p`"));
    }

    #[test]
    fn context_prefixes_without_losing_code() {
        let e = EmxError::parse("parse.model", "bad header").context("model.txt");
        assert_eq!(e.code(), "parse.model");
        assert!(e.to_string().starts_with("model.txt: bad header"));
    }
}
