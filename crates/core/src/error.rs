use std::error::Error;
use std::fmt;

use emx_regress::RegressError;
use emx_sim::SimError;

/// Errors from the characterization / estimation flows.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A test program failed to simulate (named for diagnosis).
    Sim {
        /// The test program that failed.
        program: String,
        /// The underlying simulator error.
        source: SimError,
    },
    /// The regression could not be solved (usually: too few test programs
    /// for the template, or a macro-model variable never exercised by the
    /// suite).
    Regress(RegressError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Sim { program, source } => {
                write!(f, "simulation of `{program}` failed: {source}")
            }
            CoreError::Regress(e) => write!(f, "regression failed: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Sim { source, .. } => Some(source),
            CoreError::Regress(e) => Some(e),
        }
    }
}

impl From<RegressError> for CoreError {
    fn from(e: RegressError) -> Self {
        CoreError::Regress(e)
    }
}
