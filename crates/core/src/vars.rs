use emx_hwlib::Category;
use emx_isa::op::ExecUnit;
use emx_isa::{DynClass, Opcode};
use emx_sim::ExecStats;

/// Granularity at which class-A (arithmetic) instructions enter the
/// model.
///
/// The paper clusters all arithmetic instructions into a single variable,
/// noting that "such a clustering is convenient (and later seen to be
/// accurate)". The per-unit alternative quantifies that claim in the A3
/// ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ArithGranularity {
    /// One variable for all arithmetic instructions (the paper's choice).
    #[default]
    Clustered,
    /// One variable per EX-stage functional unit (adder / logic / shifter
    /// / multiplier / move).
    PerUnit,
}

/// Which terms the macro-model template includes.
///
/// The default is the paper's full 21-variable hybrid template; the other
/// combinations exist for the ablation studies of DESIGN.md (A1–A4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelSpec {
    /// Include the ten structural (custom-hardware) variables. Dropping
    /// them yields a conventional instruction-level-only model (A1).
    pub structural: bool,
    /// Include the custom→base side-effect variable `n_CI` (A2).
    pub ci_side_effect: bool,
    /// Weight structural activations by the bit-width complexity `f(C)`;
    /// `false` uses raw activation counts (A4).
    pub width_complexity: bool,
    /// Arithmetic-class granularity (A3).
    pub arith: ArithGranularity,
}

impl Default for ModelSpec {
    fn default() -> Self {
        ModelSpec {
            structural: true,
            ci_side_effect: true,
            width_complexity: true,
            arith: ArithGranularity::Clustered,
        }
    }
}

impl ModelSpec {
    /// The paper's full hybrid template (same as `Default`).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Conventional instruction-level-only model (ablation A1): no
    /// structural variables, no side-effect variable.
    pub fn instruction_level_only() -> Self {
        ModelSpec {
            structural: false,
            ci_side_effect: false,
            ..Self::default()
        }
    }

    /// Variable names, in template (coefficient-vector) order.
    ///
    /// For the paper's template these are the 21 rows of Table I:
    /// `alpha_A, alpha_L, alpha_S, alpha_J, alpha_Bt, alpha_Bu,
    /// beta_icm, beta_dcm, beta_ucf, beta_ilk, gamma_CI,
    /// delta_mult, …, delta_table`.
    pub fn variable_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        match self.arith {
            ArithGranularity::Clustered => names.push("alpha_A".to_owned()),
            ArithGranularity::PerUnit => {
                for unit in ["adder", "logic", "shifter", "mult", "move"] {
                    names.push(format!("alpha_A_{unit}"));
                }
            }
        }
        for class in &DynClass::ALL[1..] {
            names.push(format!("alpha_{}", class.short_name()));
        }
        for event in ["icm", "dcm", "ucf", "ilk"] {
            names.push(format!("beta_{event}"));
        }
        if self.ci_side_effect {
            names.push("gamma_CI".to_owned());
        }
        if self.structural {
            for cat in Category::ALL {
                names.push(format!("delta_{}", cat.var_name()));
            }
        }
        names
    }

    /// Number of model variables.
    pub fn len(&self) -> usize {
        let arith = match self.arith {
            ArithGranularity::Clustered => 1,
            ArithGranularity::PerUnit => 5,
        };
        arith + 5 + 4 + usize::from(self.ci_side_effect) + if self.structural { 10 } else { 0 }
    }

    /// Always at least 10 variables; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Extracts the model's independent-variable vector from execution
    /// statistics (the paper's steps 6–7 during characterization, 9–10
    /// during estimation).
    pub fn variables(&self, stats: &ExecStats) -> Vec<f64> {
        let mut x = Vec::with_capacity(self.len());
        match self.arith {
            ArithGranularity::Clustered => {
                x.push(stats.cycles_of(DynClass::Arithmetic) as f64);
            }
            ArithGranularity::PerUnit => {
                let mut unit_cycles = [0u64; 5];
                for &op in Opcode::ALL {
                    if op.base_class() == emx_isa::BaseClass::Arithmetic {
                        let slot = match op.exec_unit() {
                            ExecUnit::Adder => 0,
                            ExecUnit::Logic => 1,
                            ExecUnit::Shifter => 2,
                            ExecUnit::Multiplier => 3,
                            ExecUnit::Move | ExecUnit::None => 4,
                        };
                        unit_cycles[slot] += stats.opcode_cycles[op.index()];
                    }
                }
                x.extend(unit_cycles.iter().map(|&c| c as f64));
            }
        }
        for class in &DynClass::ALL[1..] {
            x.push(stats.cycles_of(*class) as f64);
        }
        x.push(stats.icache_misses as f64);
        x.push(stats.dcache_misses as f64);
        x.push(stats.uncached_fetches as f64);
        x.push(stats.interlocks as f64);
        if self.ci_side_effect {
            x.push(stats.ci_gpr_cycles as f64);
        }
        if self.structural {
            let activity = if self.width_complexity {
                &stats.struct_activity
            } else {
                &stats.struct_activations
            };
            x.extend_from_slice(activity);
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_template_has_21_variables() {
        let spec = ModelSpec::paper();
        assert_eq!(spec.len(), 21);
        assert_eq!(spec.variable_names().len(), 21);
    }

    #[test]
    fn variable_names_match_table_one_order() {
        let names = ModelSpec::paper().variable_names();
        assert_eq!(names[0], "alpha_A");
        assert_eq!(names[4], "alpha_Bt");
        assert_eq!(names[6], "beta_icm");
        assert_eq!(names[10], "gamma_CI");
        assert_eq!(names[11], "delta_mult");
        assert_eq!(names[20], "delta_table");
    }

    #[test]
    fn ablation_sizes() {
        assert_eq!(ModelSpec::instruction_level_only().len(), 10);
        let per_unit = ModelSpec {
            arith: ArithGranularity::PerUnit,
            ..ModelSpec::paper()
        };
        assert_eq!(per_unit.len(), 25);
        let no_ci = ModelSpec {
            ci_side_effect: false,
            ..ModelSpec::paper()
        };
        assert_eq!(no_ci.len(), 20);
    }

    #[test]
    fn variables_extract_stats() {
        let mut stats = ExecStats::new(0);
        stats.class_cycles[DynClass::Arithmetic.index()] = 100;
        stats.class_cycles[DynClass::Load.index()] = 40;
        stats.icache_misses = 3;
        stats.interlocks = 7;
        stats.ci_gpr_cycles = 11;
        stats.struct_activity[Category::Shifter.index()] = 2.5;
        let x = ModelSpec::paper().variables(&stats);
        assert_eq!(x.len(), 21);
        assert_eq!(x[0], 100.0);
        assert_eq!(x[1], 40.0);
        assert_eq!(x[6], 3.0);
        assert_eq!(x[9], 7.0);
        assert_eq!(x[10], 11.0);
        assert_eq!(x[11 + Category::Shifter.index()], 2.5);
    }

    #[test]
    fn per_unit_variables_split_arithmetic() {
        let mut stats = ExecStats::new(0);
        stats.opcode_cycles[Opcode::Add.index()] = 10;
        stats.opcode_cycles[Opcode::And.index()] = 5;
        stats.opcode_cycles[Opcode::Slli.index()] = 2;
        stats.opcode_cycles[Opcode::Mul.index()] = 1;
        stats.opcode_cycles[Opcode::Movi.index()] = 9;
        let spec = ModelSpec {
            arith: ArithGranularity::PerUnit,
            ..ModelSpec::paper()
        };
        let x = spec.variables(&stats);
        assert_eq!(&x[0..5], &[10.0, 5.0, 2.0, 1.0, 9.0]);
    }

    #[test]
    fn unweighted_structural_option() {
        let mut stats = ExecStats::new(0);
        stats.struct_activity[0] = 0.25;
        stats.struct_activations[0] = 1.0;
        let weighted = ModelSpec::paper().variables(&stats);
        let raw = ModelSpec {
            width_complexity: false,
            ..ModelSpec::paper()
        }
        .variables(&stats);
        assert_eq!(weighted[11], 0.25);
        assert_eq!(raw[11], 1.0);
    }
}
