//! Property-based tests for the hardware primitive library.

use proptest::prelude::*;

use emx_hwlib::{mask, DfGraph, LookupTable, PrimOp};

proptest! {
    #[test]
    fn results_always_fit_their_width(a in any::<u64>(), b in any::<u64>(),
                                      in_w in 1u8..=32, out_w in 1u8..=32) {
        for op in [PrimOp::Add, PrimOp::Sub, PrimOp::Mul, PrimOp::And, PrimOp::Or,
                   PrimOp::Xor, PrimOp::Shl, PrimOp::Shr, PrimOp::MaxU, PrimOp::MinU] {
            let g = DfGraph::single_op(op, in_w, out_w);
            let out = g.eval(&[a, b]).expect("arity matches")
                .outputs()[0];
            prop_assert_eq!(out, mask(out, out_w), "{:?} leaked bits", op);
        }
    }

    #[test]
    fn csa_invariant(a in any::<u64>(), b in any::<u64>(), c in any::<u64>(), w in 2u8..=32) {
        // sum ⊕-part plus carry part equals the arithmetic sum (mod 2^(w+2)).
        let mut g = DfGraph::new();
        let ia = g.input("a", w);
        let ib = g.input("b", w);
        let ic = g.input("c", w);
        let s = g.node(PrimOp::TieCsaSum, w + 2, &[ia, ib, ic]).expect("graph");
        let k = g.node(PrimOp::TieCsaCarry, w + 2, &[ia, ib, ic]).expect("graph");
        g.output(s);
        g.output(k);
        let r = g.eval(&[a, b, c]).expect("inputs match");
        let total = mask(a, w) + mask(b, w) + mask(c, w);
        prop_assert_eq!(mask(r.outputs()[0] + r.outputs()[1], w + 2), mask(total, w + 2));
    }

    #[test]
    fn tie_add_is_three_way_add(a in any::<u64>(), b in any::<u64>(), c in any::<u64>(), w in 1u8..=32) {
        let g = DfGraph::single_op(PrimOp::TieAdd, w, w);
        let out = g.eval(&[a, b, c]).expect("inputs match").outputs()[0];
        prop_assert_eq!(out, mask(mask(a, w).wrapping_add(mask(b, w)).wrapping_add(mask(c, w)), w));
    }

    #[test]
    fn mux_selects_exactly_one(sel in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        let mut g = DfGraph::new();
        let s = g.input("s", 1);
        let ia = g.input("a", 16);
        let ib = g.input("b", 16);
        let m = g.node(PrimOp::Mux, 16, &[s, ia, ib]).expect("graph");
        g.output(m);
        let out = g.eval(&[sel, a, b]).expect("inputs match").outputs()[0];
        let expected = if sel & 1 == 1 { mask(a, 16) } else { mask(b, 16) };
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn slice_then_pack_is_identity(v in any::<u64>(), lsb in 0u8..24) {
        // Splitting a 32-bit word at `lsb+8` and re-packing restores it.
        let cut = lsb + 8;
        let mut g = DfGraph::new();
        let a = g.input("a", 32);
        let lo = g.node(PrimOp::Slice { lsb: 0 }, cut, &[a]).expect("graph");
        let hi = g.node(PrimOp::Slice { lsb: cut }, 32 - cut, &[a]).expect("graph");
        let back = g.node(PrimOp::Pack { lsb: cut }, 32, &[lo, hi]).expect("graph");
        g.output(back);
        let out = g.eval(&[v]).expect("inputs match").outputs()[0];
        prop_assert_eq!(out, mask(v, 32));
    }

    #[test]
    fn eval_is_deterministic_and_matches_eval_into(a in any::<u64>(), b in any::<u64>()) {
        let mut g = DfGraph::new();
        let ia = g.input("a", 16);
        let ib = g.input("b", 16);
        let t = g.add_table(LookupTable::new((0..32).map(|i| i * 3 % 17).collect(), 8).expect("table"));
        let m = g.node(PrimOp::Mul, 32, &[ia, ib]).expect("graph");
        let lk = g.node(PrimOp::TableLookup { table_index: t }, 8, &[ia]).expect("graph");
        let s = g.node(PrimOp::Add, 32, &[m, lk]).expect("graph");
        g.output(s);

        let r1 = g.eval(&[a, b]).expect("inputs match");
        let r2 = g.eval(&[a, b]).expect("inputs match");
        prop_assert_eq!(&r1, &r2);

        let mut buf = Vec::new();
        g.eval_into(&[a, b], &mut buf).expect("inputs match");
        prop_assert_eq!(r1.node_values(), &buf[..]);
        let outs: Vec<u64> = g.output_ids().iter().map(|o| buf[o.index()]).collect();
        prop_assert_eq!(r1.outputs(), &outs[..]);
    }

    #[test]
    fn reductions_produce_single_bits(v in any::<u64>(), w in 1u8..=64) {
        for op in [PrimOp::RedAnd, PrimOp::RedOr, PrimOp::RedXor] {
            let mut g = DfGraph::new();
            let a = g.input("a", w);
            let r = g.node(op, 1, &[a]).expect("graph");
            g.output(r);
            let out = g.eval(&[v]).expect("inputs match").outputs()[0];
            prop_assert!(out <= 1);
        }
    }

    #[test]
    fn complexity_is_monotonic_in_width(w1 in 1u8..=63, extra in 1u8..=1) {
        let w2 = w1 + extra;
        for cat in emx_hwlib::Category::ALL {
            prop_assert!(cat.complexity(w2, 16) >= cat.complexity(w1, 16));
        }
    }
}
