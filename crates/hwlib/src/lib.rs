//! Custom hardware primitive library for the emx extensible processor.
//!
//! Custom (TIE-like) instructions are built from a library of hardware
//! primitives. The paper classifies that library into ten component
//! categories for its *structural* macro-model variables (Section IV-B.1):
//! multiplier; adder/subtractor/comparator; bit-wise logic / reduction
//! logic / multiplexer; shifter; custom register; and the specialized TIE
//! modules `TIE_mult`, `TIE_mac`, `TIE_add`, `TIE_csa` and `table`.
//!
//! This crate provides:
//!
//! * [`Category`] — the ten categories with their bit-width complexity
//!   functions `f(C)` (linear for most components, quadratic for
//!   multipliers, entries × width for tables),
//! * [`PrimOp`] — the concrete operations a datapath node can perform, each
//!   mapped to its category, with full evaluation semantics,
//! * [`DfGraph`] — acyclic dataflow graphs over primitives: the
//!   intermediate representation in which custom instructions are
//!   described, validated, scheduled and *executed* by the simulator,
//! * [`HwEnergyParams`] — per-category switching/leakage energy parameters
//!   used by the RTL-level reference estimator (the ground truth against
//!   which the macro-model is regressed).
//!
//! # Example
//!
//! A multiply–accumulate datapath `out = a*b + c`:
//!
//! ```
//! use emx_hwlib::{DfGraph, PrimOp};
//!
//! let mut g = DfGraph::new();
//! let a = g.input("a", 16);
//! let b = g.input("b", 16);
//! let c = g.input("c", 32);
//! let prod = g.node(PrimOp::Mul, 32, &[a, b]).unwrap();
//! let sum = g.node(PrimOp::Add, 32, &[prod, c]).unwrap();
//! g.output(sum);
//! let r = g.eval(&[3, 5, 7]).unwrap();
//! assert_eq!(r.outputs(), &[22]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod category;
mod dot;
mod energy;
mod graph;
mod prim;
mod table;

pub use category::Category;
pub use energy::HwEnergyParams;
pub use graph::{DfGraph, EvalResult, GraphError, NodeDesc, NodeId};
pub use prim::{mask, sext, PrimOp};
pub use table::{LookupTable, TableError};
