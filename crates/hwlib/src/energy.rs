use crate::Category;

/// Ground-truth energy parameters of the hardware library, used by the
/// RTL-level reference estimator (`emx-rtlpower`).
///
/// These play the role of the gate-level library characterization that a
/// commercial RTL power tool (the paper uses Sente WattWatcher on
/// synthesized 0.25 µm RTL) applies internally. The macro-model never sees
/// them — it only sees the resulting energies — so they are free parameters
/// of the *substrate*, chosen to give physically plausible magnitudes
/// (picojoules per activation at 0.25 µm / 187 MHz) and a realistic mix of
/// data-independent and data-dependent (switching) energy.
///
/// Per activation of a component of category `c` with complexity `f(C)`
/// (see [`Category::complexity`]) and input Hamming distance `h` relative
/// to its previous activation:
///
/// ```text
/// E = base(c) · f(C) + toggle_per_bit(c) · h
/// ```
///
/// Instantiated but idle custom hardware additionally consumes
/// [`HwEnergyParams::leakage_per_cycle`] per unit complexity each cycle,
/// and components whose inputs are wired to the shared operand buses see
/// [`HwEnergyParams::idle_coupling_per_bit`] per toggled bus bit even when
/// their instruction is not executing (the paper's Fig. 1 side effect).
#[derive(Debug, Clone, PartialEq)]
pub struct HwEnergyParams {
    base_pj: [f64; 10],
    toggle_pj_per_bit: [f64; 10],
    leakage_pj: f64,
    idle_coupling_pj: f64,
}

impl HwEnergyParams {
    /// Data-independent energy per activation, in pJ per unit complexity.
    pub fn base(&self, category: Category) -> f64 {
        self.base_pj[category.index()]
    }

    /// Data-dependent energy per toggled input bit, in pJ.
    pub fn toggle_per_bit(&self, category: Category) -> f64 {
        self.toggle_pj_per_bit[category.index()]
    }

    /// Leakage of instantiated custom hardware, in pJ per cycle per unit
    /// complexity.
    pub fn leakage_per_cycle(&self) -> f64 {
        self.leakage_pj
    }

    /// Energy induced in operand-bus-connected custom hardware by bus
    /// toggles of *other* instructions, in pJ per toggled bit.
    pub fn idle_coupling_per_bit(&self) -> f64 {
        self.idle_coupling_pj
    }

    /// Overrides the base energy of one category (for ablation studies).
    pub fn set_base(&mut self, category: Category, pj: f64) {
        self.base_pj[category.index()] = pj;
    }

    /// Overrides the toggle energy of one category (for ablation studies).
    pub fn set_toggle_per_bit(&mut self, category: Category, pj: f64) {
        self.toggle_pj_per_bit[category.index()] = pj;
    }
}

impl Default for HwEnergyParams {
    /// Plausible 0.25 µm-class values. The ordering across categories
    /// (shifter ≫ custom register > TIE mac > TIE mult ≳ multiplier >
    /// adder ≈ TIE add > CSA > table > logic) mirrors the coefficient
    /// ordering the paper reports in Table I.
    fn default() -> Self {
        // Indexed by Category::index():
        //  [mult, addcmp, logmux, shift, creg, tie_mult, tie_mac, tie_add,
        //   tie_csa, table]
        HwEnergyParams {
            base_pj: [
                130.0, 58.0, 9.5, 330.0, 155.0, 142.0, 166.0, 57.0, 30.0, 23.0,
            ],
            toggle_pj_per_bit: [1.1, 0.55, 0.1, 2.4, 1.2, 1.15, 1.3, 0.55, 0.3, 0.2],
            leakage_pj: 0.45,
            idle_coupling_pj: 0.22,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ordering_mirrors_table_one() {
        let p = HwEnergyParams::default();
        // Table I ordering of structural coefficients (paper):
        // shifter(377) > creg(177) > tie_mac(190)… keep the broad shape:
        assert!(p.base(Category::Shifter) > p.base(Category::CustomReg));
        assert!(p.base(Category::CustomReg) > p.base(Category::Multiplier));
        assert!(p.base(Category::TieMac) > p.base(Category::TieMult));
        assert!(p.base(Category::Multiplier) > p.base(Category::AdderCmp));
        assert!(p.base(Category::AdderCmp) > p.base(Category::TieCsa));
        assert!(p.base(Category::TieCsa) > p.base(Category::Table));
        assert!(p.base(Category::Table) > p.base(Category::LogicMux));
    }

    #[test]
    fn setters_override() {
        let mut p = HwEnergyParams::default();
        p.set_base(Category::Table, 99.0);
        p.set_toggle_per_bit(Category::Table, 9.0);
        assert_eq!(p.base(Category::Table), 99.0);
        assert_eq!(p.toggle_per_bit(Category::Table), 9.0);
    }

    #[test]
    fn all_parameters_positive() {
        let p = HwEnergyParams::default();
        for c in Category::ALL {
            assert!(p.base(c) > 0.0);
            assert!(p.toggle_per_bit(c) > 0.0);
        }
        assert!(p.leakage_per_cycle() > 0.0);
        assert!(p.idle_coupling_per_bit() > 0.0);
    }
}
