use std::error::Error;
use std::fmt;

use crate::prim::mask;
use crate::{Category, LookupTable, PrimOp};

/// Handle to a node inside a [`DfGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// Position of the node in the graph's topological order.
    pub fn index(self) -> usize {
        self.0
    }

    /// Internal reconstruction from an index (DOT rendering only; not part
    /// of the public construction API).
    pub(crate) fn from_index_for_dot(index: usize) -> NodeId {
        NodeId(index)
    }
}

#[derive(Debug, Clone, PartialEq)]
enum NodeKind {
    Input { name: String },
    Const { value: u64 },
    Op { op: PrimOp, inputs: Vec<NodeId> },
}

#[derive(Debug, Clone, PartialEq)]
struct Node {
    kind: NodeKind,
    width: u8,
}

/// Error produced while building or evaluating a [`DfGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An operation was given the wrong number of inputs.
    Arity {
        /// The operation.
        op: PrimOp,
        /// Inputs it requires.
        expected: usize,
        /// Inputs it was given.
        got: usize,
    },
    /// A referenced node id does not exist (yet) in this graph.
    ///
    /// Nodes may only reference earlier nodes, which guarantees the graph
    /// is acyclic by construction.
    UnknownNode(usize),
    /// A [`PrimOp::TableLookup`] referenced a table index that has not been
    /// added with [`DfGraph::add_table`].
    UnknownTable(usize),
    /// A node width outside `1..=64`.
    BadWidth(u8),
    /// A constant value does not fit in its declared width.
    ConstTooWide,
    /// [`DfGraph::eval`] was called with the wrong number of input values.
    InputCount {
        /// Inputs declared by the graph.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Arity { op, expected, got } => {
                write!(f, "{op} takes {expected} inputs, got {got}")
            }
            GraphError::UnknownNode(i) => write!(f, "unknown node id {i}"),
            GraphError::UnknownTable(i) => write!(f, "unknown table index {i}"),
            GraphError::BadWidth(w) => write!(f, "node width {w} outside 1..=64"),
            GraphError::ConstTooWide => write!(f, "constant does not fit its width"),
            GraphError::InputCount { expected, got } => {
                write!(f, "graph has {expected} inputs, eval got {got}")
            }
        }
    }
}

impl Error for GraphError {}

/// Result of evaluating a [`DfGraph`] on one input vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalResult {
    outputs: Vec<u64>,
    node_values: Vec<u64>,
}

impl EvalResult {
    /// Values of the designated output nodes, in [`DfGraph::output`] order.
    pub fn outputs(&self) -> &[u64] {
        &self.outputs
    }

    /// Value of every node, indexed by [`NodeId::index`].
    ///
    /// The structural energy model uses these to compute per-component
    /// switching activity between consecutive activations.
    pub fn node_values(&self) -> &[u64] {
        &self.node_values
    }
}

/// Structural description of one node, as returned by
/// [`DfGraph::node_desc`]. Node ids referenced by an `Op` variant are
/// always smaller than the described node's id (graphs are acyclic by
/// construction), so a walk over ascending ids visits producers before
/// consumers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeDesc<'a> {
    /// A declared input (operand bus, immediate, or custom-register read).
    Input {
        /// Declared input name.
        name: &'a str,
        /// Input width in bits.
        width: u8,
    },
    /// A constant.
    Const {
        /// The constant's value.
        value: u64,
        /// Result width in bits.
        width: u8,
    },
    /// A combinational operation.
    Op {
        /// The operation.
        op: PrimOp,
        /// Result width in bits.
        width: u8,
        /// Operand node ids, in operand order.
        inputs: &'a [NodeId],
    },
}

/// Description of one combinational component instance in a graph, as seen
/// by the resource-usage analysis and the structural energy model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpNodeInfo {
    /// The node.
    pub id: NodeId,
    /// Its operation.
    pub op: PrimOp,
    /// Hardware-library category.
    pub category: Category,
    /// Result width in bits.
    pub width: u8,
    /// Effective component width for complexity purposes (operand width
    /// for multiplier-like components, entry width for tables).
    pub component_width: u8,
    /// Number of table entries (0 for non-table components).
    pub entries: usize,
    /// Input node ids.
    pub inputs: Vec<NodeId>,
}

impl OpNodeInfo {
    /// The component's bit-width complexity `f(C)` (see
    /// [`Category::complexity`]).
    pub fn complexity(&self) -> f64 {
        self.category.complexity(self.component_width, self.entries)
    }
}

/// An acyclic dataflow graph over hardware primitives.
///
/// This is the intermediate representation in which custom instructions
/// are described: named inputs (operand buses, custom-register reads,
/// immediates), combinational [`PrimOp`] nodes, constants, lookup tables,
/// and designated output nodes (GPR/custom-register writebacks).
///
/// Acyclicity is guaranteed *by construction*: a node can only reference
/// node ids that already exist.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DfGraph {
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    tables: Vec<LookupTable>,
}

impl DfGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the one-component graph `out = op(i0, …)` with `in_w`-bit
    /// inputs (one per operand of `op`) and an `out_w`-bit result — the
    /// "unit datapath" that tests and fuzzers wrap around a single
    /// primitive.
    ///
    /// # Panics
    ///
    /// Panics on invalid widths (outside `1..=64`) and on table lookups —
    /// `op` must not reference a table, since a unit graph owns none.
    pub fn single_op(op: PrimOp, in_w: u8, out_w: u8) -> Self {
        let mut g = DfGraph::new();
        let inputs: Vec<NodeId> = (0..op.arity())
            .map(|i| g.input(&format!("i{i}"), in_w))
            .collect();
        let n = g
            .node(op, out_w, &inputs)
            .expect("single_op: op must be valid outside a table context");
        g.output(n);
        g
    }

    /// Adds a named graph input of the given width and returns its node.
    ///
    /// Input values are supplied to [`DfGraph::eval`] in creation order.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=64`.
    pub fn input(&mut self, name: &str, width: u8) -> NodeId {
        assert!(
            (1..=64).contains(&width),
            "input width {width} outside 1..=64"
        );
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            kind: NodeKind::Input {
                name: name.to_owned(),
            },
            width,
        });
        self.inputs.push(id);
        id
    }

    /// Adds a constant node.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::BadWidth`] or [`GraphError::ConstTooWide`].
    pub fn constant(&mut self, value: u64, width: u8) -> Result<NodeId, GraphError> {
        if !(1..=64).contains(&width) {
            return Err(GraphError::BadWidth(width));
        }
        if value > mask(u64::MAX, width) {
            return Err(GraphError::ConstTooWide);
        }
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            kind: NodeKind::Const { value },
            width,
        });
        Ok(id)
    }

    /// Adds a lookup table and returns its index for use in
    /// [`PrimOp::TableLookup`].
    pub fn add_table(&mut self, table: LookupTable) -> usize {
        self.tables.push(table);
        self.tables.len() - 1
    }

    /// Adds a combinational node computing `op` over `inputs` with the
    /// given result width.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Arity`] on the wrong input count,
    /// [`GraphError::UnknownNode`] if an input id does not exist yet (this
    /// is what enforces acyclicity), [`GraphError::UnknownTable`] for a
    /// dangling table reference, and [`GraphError::BadWidth`] for an
    /// invalid width.
    pub fn node(&mut self, op: PrimOp, width: u8, inputs: &[NodeId]) -> Result<NodeId, GraphError> {
        if !(1..=64).contains(&width) {
            return Err(GraphError::BadWidth(width));
        }
        if inputs.len() != op.arity() {
            return Err(GraphError::Arity {
                op,
                expected: op.arity(),
                got: inputs.len(),
            });
        }
        for &i in inputs {
            if i.0 >= self.nodes.len() {
                return Err(GraphError::UnknownNode(i.0));
            }
        }
        if let PrimOp::TableLookup { table_index } = op {
            if table_index >= self.tables.len() {
                return Err(GraphError::UnknownTable(table_index));
            }
        }
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            kind: NodeKind::Op {
                op,
                inputs: inputs.to_vec(),
            },
            width,
        });
        Ok(id)
    }

    /// Designates `id` as a graph output (in call order).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn output(&mut self, id: NodeId) {
        assert!(id.0 < self.nodes.len(), "output id out of range");
        self.outputs.push(id);
    }

    /// Number of declared inputs.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of declared outputs.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Total number of nodes (inputs + constants + operations).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Node handles in topological (insertion) order. Combined with
    /// [`DfGraph::node_desc`] this walks the whole structure.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Width of a node's result.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn width(&self, id: NodeId) -> u8 {
        self.nodes[id.0].width
    }

    /// Names and widths of the declared inputs, in order.
    pub fn input_signature(&self) -> Vec<(String, u8)> {
        self.inputs
            .iter()
            .map(|&id| match &self.nodes[id.0].kind {
                NodeKind::Input { name } => (name.clone(), self.nodes[id.0].width),
                _ => unreachable!("inputs list only holds input nodes"),
            })
            .collect()
    }

    /// The lookup tables owned by this graph.
    pub fn tables(&self) -> &[LookupTable] {
        &self.tables
    }

    /// Describes the node `id` structurally: kind, width, and (for
    /// operation nodes) operand edges.
    ///
    /// This is the read-side counterpart of [`DfGraph::input`],
    /// [`DfGraph::constant`] and [`DfGraph::node`] — enough to reproduce
    /// the graph in another representation (a netlist printer, a TIE
    /// source emitter, a structural hash) without widening the builder
    /// API.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn node_desc(&self, id: NodeId) -> NodeDesc<'_> {
        let node = &self.nodes[id.0];
        match &node.kind {
            NodeKind::Input { name } => NodeDesc::Input {
                name,
                width: node.width,
            },
            NodeKind::Const { value } => NodeDesc::Const {
                value: *value,
                width: node.width,
            },
            NodeKind::Op { op, inputs } => NodeDesc::Op {
                op: *op,
                width: node.width,
                inputs,
            },
        }
    }

    /// Describes every combinational component instance in the graph.
    ///
    /// This is the basis for the paper's *dynamic resource usage analysis*:
    /// each executed custom instruction activates each of these instances
    /// once per activation cycle, contributing
    /// `f(C) · active-cycles` to its category's structural variable.
    pub fn op_nodes(&self) -> Vec<OpNodeInfo> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| match &n.kind {
                NodeKind::Op { op, inputs } => {
                    let category = op.category();
                    // Multiplier-like components scale with operand width;
                    // everything else with result width; tables with entry
                    // width and count.
                    let (component_width, entries) = match op {
                        PrimOp::TableLookup { table_index } => {
                            let t = &self.tables[*table_index];
                            (t.width(), t.len())
                        }
                        PrimOp::Mul | PrimOp::MulS | PrimOp::TieMult | PrimOp::TieMac => {
                            let w = inputs
                                .iter()
                                .take(2)
                                .map(|&i| self.nodes[i.0].width)
                                .max()
                                .unwrap_or(n.width);
                            (w, 0)
                        }
                        _ => (n.width, 0),
                    };
                    Some(OpNodeInfo {
                        id: NodeId(i),
                        op: *op,
                        category,
                        width: n.width,
                        component_width,
                        entries,
                        inputs: inputs.clone(),
                    })
                }
                _ => None,
            })
            .collect()
    }

    /// Evaluates the graph on one input vector (values are masked to their
    /// declared input widths).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InputCount`] if `input_values` does not match
    /// the declared inputs.
    pub fn eval(&self, input_values: &[u64]) -> Result<EvalResult, GraphError> {
        let mut values = Vec::new();
        self.eval_into(input_values, &mut values)?;
        let outputs = self.outputs.iter().map(|&o| values[o.0]).collect();
        Ok(EvalResult {
            outputs,
            node_values: values,
        })
    }

    /// Like [`DfGraph::eval`], but writes all node values into a reusable
    /// buffer (resized to [`DfGraph::node_count`]) instead of allocating.
    ///
    /// Output values can be read back through [`DfGraph::output_ids`]
    /// (`values[graph.output_ids()[k].index()]`). This is the hot path of
    /// the instruction-set simulator.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InputCount`] if `input_values` does not match
    /// the declared inputs.
    pub fn eval_into(&self, input_values: &[u64], values: &mut Vec<u64>) -> Result<(), GraphError> {
        if input_values.len() != self.inputs.len() {
            return Err(GraphError::InputCount {
                expected: self.inputs.len(),
                got: input_values.len(),
            });
        }
        values.clear();
        values.resize(self.nodes.len(), 0);
        let mut next_input = 0;
        let mut in_vals = [0u64; 3];
        let mut in_widths = [0u8; 3];
        for i in 0..self.nodes.len() {
            let node = &self.nodes[i];
            values[i] = match &node.kind {
                NodeKind::Input { .. } => {
                    let v = mask(input_values[next_input], node.width);
                    next_input += 1;
                    v
                }
                NodeKind::Const { value } => *value,
                NodeKind::Op { op, inputs } => {
                    for (k, &x) in inputs.iter().enumerate() {
                        in_vals[k] = values[x.0];
                        in_widths[k] = self.nodes[x.0].width;
                    }
                    let n = inputs.len();
                    op.eval(&in_vals[..n], &in_widths[..n], node.width, &self.tables)
                }
            };
        }
        Ok(())
    }

    /// The input nodes, in declaration order.
    pub fn input_ids(&self) -> &[NodeId] {
        &self.inputs
    }

    /// The designated output nodes, in [`DfGraph::output`] order.
    ///
    /// Together with [`DfGraph::eval_into`] this lets hot paths read
    /// outputs straight out of the node-value buffer without allocating:
    /// `values[graph.output_ids()[k].index()]`.
    pub fn output_ids(&self) -> &[NodeId] {
        &self.outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_graph_evaluates() {
        let mut g = DfGraph::new();
        let a = g.input("a", 16);
        let b = g.input("b", 16);
        let acc = g.input("acc", 40);
        let mac = g.node(PrimOp::TieMac, 40, &[a, b, acc]).unwrap();
        g.output(mac);
        let r = g.eval(&[100, 200, 1000]).unwrap();
        assert_eq!(r.outputs(), &[21000]);
    }

    #[test]
    fn inputs_are_masked_to_width() {
        let mut g = DfGraph::new();
        let a = g.input("a", 8);
        g.output(a);
        let r = g.eval(&[0x1ff]).unwrap();
        assert_eq!(r.outputs(), &[0xff]);
    }

    #[test]
    fn constants_participate() {
        let mut g = DfGraph::new();
        let a = g.input("a", 8);
        let k = g.constant(0x0f, 8).unwrap();
        let and = g.node(PrimOp::And, 8, &[a, k]).unwrap();
        g.output(and);
        assert_eq!(g.eval(&[0xab]).unwrap().outputs(), &[0x0b]);
    }

    #[test]
    fn construction_is_validated() {
        let mut g = DfGraph::new();
        let a = g.input("a", 8);
        assert_eq!(
            g.node(PrimOp::Add, 8, &[a]),
            Err(GraphError::Arity {
                op: PrimOp::Add,
                expected: 2,
                got: 1
            })
        );
        assert_eq!(
            g.node(PrimOp::Not, 8, &[NodeId(99)]),
            Err(GraphError::UnknownNode(99))
        );
        assert_eq!(
            g.node(PrimOp::TableLookup { table_index: 0 }, 8, &[a]),
            Err(GraphError::UnknownTable(0))
        );
        assert_eq!(g.node(PrimOp::Not, 0, &[a]), Err(GraphError::BadWidth(0)));
        assert_eq!(g.constant(256, 8), Err(GraphError::ConstTooWide));
    }

    #[test]
    fn eval_checks_input_count() {
        let mut g = DfGraph::new();
        g.input("a", 8);
        g.input("b", 8);
        assert_eq!(
            g.eval(&[1]),
            Err(GraphError::InputCount {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn op_nodes_report_components() {
        let mut g = DfGraph::new();
        let a = g.input("a", 16);
        let b = g.input("b", 16);
        let t = g.add_table(LookupTable::new(vec![1, 2, 3, 4], 8).unwrap());
        let m = g.node(PrimOp::Mul, 32, &[a, b]).unwrap();
        let lk = g
            .node(PrimOp::TableLookup { table_index: t }, 8, &[a])
            .unwrap();
        let s = g.node(PrimOp::Add, 32, &[m, m]).unwrap();
        g.output(s);
        g.output(lk);

        let infos = g.op_nodes();
        assert_eq!(infos.len(), 3);
        let mul = infos
            .iter()
            .find(|i| i.category == Category::Multiplier)
            .unwrap();
        // Multiplier complexity uses operand width (16), not result width (32).
        assert_eq!(mul.component_width, 16);
        assert_eq!(mul.complexity(), 0.25);
        let table = infos
            .iter()
            .find(|i| i.category == Category::Table)
            .unwrap();
        assert_eq!(table.entries, 4);
        let add = infos
            .iter()
            .find(|i| i.category == Category::AdderCmp)
            .unwrap();
        assert_eq!(add.complexity(), 1.0);
    }

    #[test]
    fn node_values_expose_internal_activity() {
        let mut g = DfGraph::new();
        let a = g.input("a", 8);
        let n = g.node(PrimOp::Not, 8, &[a]).unwrap();
        g.output(n);
        let r = g.eval(&[0x0f]).unwrap();
        assert_eq!(r.node_values()[a.index()], 0x0f);
        assert_eq!(r.node_values()[n.index()], 0xf0);
    }

    #[test]
    fn input_signature_reports_names() {
        let mut g = DfGraph::new();
        g.input("x", 4);
        g.input("y", 12);
        assert_eq!(
            g.input_signature(),
            vec![("x".to_owned(), 4), ("y".to_owned(), 12)]
        );
    }

    #[test]
    fn multi_output_graph() {
        let mut g = DfGraph::new();
        let a = g.input("a", 8);
        let b = g.input("b", 8);
        let s = g.node(PrimOp::TieCsaSum, 8, &[a, b, a]).unwrap();
        let c = g.node(PrimOp::TieCsaCarry, 16, &[a, b, a]).unwrap();
        g.output(s);
        g.output(c);
        let r = g.eval(&[3, 5]).unwrap();
        assert_eq!(r.outputs().len(), 2);
        assert_eq!(r.outputs()[0] + r.outputs()[1], 3 + 5 + 3);
    }
}
