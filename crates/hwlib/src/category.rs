use std::fmt;

/// The ten component categories of the custom hardware library.
///
/// These are the structural macro-model dimensions of the paper
/// (Section IV-B.1): each category `i` contributes a term
/// `δ_i · Σ_j f_i(C_ij) · n_act(i,j)` to the custom-hardware energy, where
/// `f_i` captures the energy dependence on the component's bit-width (or
/// table size) and `n_act` counts the cycles in which instance `j` is
/// active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// General multiplier assembled from library gates (quadratic
    /// bit-width dependence).
    Multiplier,
    /// Adders, subtractors and comparators.
    AdderCmp,
    /// Bit-wise logic, reduction logic and multiplexers.
    LogicMux,
    /// Barrel shifters.
    Shifter,
    /// Custom (extension-defined) registers and register files.
    CustomReg,
    /// The specialized `TIE_mult` module.
    TieMult,
    /// The specialized `TIE_mac` (multiply-accumulate) module.
    TieMac,
    /// The specialized `TIE_add` (three-operand add) module.
    TieAdd,
    /// The specialized `TIE_csa` (carry-save adder) module.
    TieCsa,
    /// Lookup tables (`table` construct).
    Table,
}

impl Category {
    /// All categories, in the row order of Table I of the paper.
    pub const ALL: [Category; 10] = [
        Category::Multiplier,
        Category::AdderCmp,
        Category::LogicMux,
        Category::Shifter,
        Category::CustomReg,
        Category::TieMult,
        Category::TieMac,
        Category::TieAdd,
        Category::TieCsa,
        Category::Table,
    ];

    /// Index of the category inside [`Category::ALL`] (and hence inside the
    /// structural part of the macro-model coefficient vector).
    pub fn index(self) -> usize {
        match self {
            Category::Multiplier => 0,
            Category::AdderCmp => 1,
            Category::LogicMux => 2,
            Category::Shifter => 3,
            Category::CustomReg => 4,
            Category::TieMult => 5,
            Category::TieMac => 6,
            Category::TieAdd => 7,
            Category::TieCsa => 8,
            Category::Table => 9,
        }
    }

    /// Bit-width complexity function `f(C)` of the category, normalized so
    /// that a 32-bit instance (or a 16-entry × 32-bit table) has
    /// `f(C) = 1`.
    ///
    /// The paper: "The dependence on bit-width is linear in the case of
    /// hardware components such as adders, multiplexers, etc., while the
    /// dependence is quadratic in the case of a multiplier"; for a table it
    /// depends on "the number of entries and bit-width of each entry".
    ///
    /// `entries` is ignored except for [`Category::Table`].
    ///
    /// # Example
    ///
    /// ```
    /// use emx_hwlib::Category;
    ///
    /// assert_eq!(Category::AdderCmp.complexity(32, 0), 1.0);
    /// assert_eq!(Category::AdderCmp.complexity(16, 0), 0.5);
    /// assert_eq!(Category::Multiplier.complexity(16, 0), 0.25);
    /// assert_eq!(Category::Table.complexity(32, 16), 1.0);
    /// ```
    pub fn complexity(self, width: u8, entries: usize) -> f64 {
        let w = f64::from(width);
        match self {
            Category::Multiplier | Category::TieMult | Category::TieMac => (w / 32.0) * (w / 32.0),
            Category::Table => (entries as f64 * w) / (16.0 * 32.0),
            _ => w / 32.0,
        }
    }

    /// Name of the category as written in Table I of the paper.
    pub fn paper_name(self) -> &'static str {
        match self {
            Category::Multiplier => "*",
            Category::AdderCmp => "+/-/comp",
            Category::LogicMux => "log/red/mux",
            Category::Shifter => "shifter",
            Category::CustomReg => "custom register",
            Category::TieMult => "TIE mult",
            Category::TieMac => "TIE mac",
            Category::TieAdd => "TIE add",
            Category::TieCsa => "TIE csa",
            Category::Table => "table",
        }
    }

    /// Identifier-style name, used for macro-model variable names.
    pub fn var_name(self) -> &'static str {
        match self {
            Category::Multiplier => "mult",
            Category::AdderCmp => "addcmp",
            Category::LogicMux => "logmux",
            Category::Shifter => "shift",
            Category::CustomReg => "creg",
            Category::TieMult => "tie_mult",
            Category::TieMac => "tie_mac",
            Category::TieAdd => "tie_add",
            Category::TieCsa => "tie_csa",
            Category::Table => "table",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_categories_with_dense_indices() {
        assert_eq!(Category::ALL.len(), 10);
        for (i, c) in Category::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn complexity_is_quadratic_for_multipliers() {
        for cat in [Category::Multiplier, Category::TieMult, Category::TieMac] {
            assert_eq!(cat.complexity(32, 0), 1.0);
            assert_eq!(cat.complexity(64, 0), 4.0);
            assert_eq!(cat.complexity(8, 0), 1.0 / 16.0);
        }
    }

    #[test]
    fn complexity_is_linear_for_simple_components() {
        for cat in [
            Category::AdderCmp,
            Category::LogicMux,
            Category::Shifter,
            Category::CustomReg,
            Category::TieAdd,
            Category::TieCsa,
        ] {
            assert_eq!(cat.complexity(32, 0), 1.0);
            assert_eq!(cat.complexity(8, 0), 0.25);
        }
    }

    #[test]
    fn table_complexity_scales_with_entries_and_width() {
        assert_eq!(Category::Table.complexity(32, 16), 1.0);
        assert_eq!(Category::Table.complexity(32, 32), 2.0);
        assert_eq!(Category::Table.complexity(8, 16), 0.25);
    }

    #[test]
    fn names_are_unique() {
        let mut paper: Vec<_> = Category::ALL.iter().map(|c| c.paper_name()).collect();
        paper.sort_unstable();
        paper.dedup();
        assert_eq!(paper.len(), 10);
        let mut vars: Vec<_> = Category::ALL.iter().map(|c| c.var_name()).collect();
        vars.sort_unstable();
        vars.dedup();
        assert_eq!(vars.len(), 10);
    }
}
