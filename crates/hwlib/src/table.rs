use std::error::Error;
use std::fmt;

/// A hardware lookup table (the paper's `table` construct, category 10).
///
/// Tables map a small index to a constant `width`-bit value — the classic
/// use in the paper's domain is Galois-field log/antilog tables for
/// Reed–Solomon codecs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LookupTable {
    entries: Vec<u64>,
    width: u8,
}

/// Error returned by [`LookupTable::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TableError {
    /// The table had no entries.
    Empty,
    /// `width` was outside `1..=64`.
    BadWidth(u8),
    /// An entry value did not fit in `width` bits.
    EntryTooWide {
        /// Index of the offending entry.
        index: usize,
        /// The value that did not fit.
        value: u64,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::Empty => write!(f, "lookup table has no entries"),
            TableError::BadWidth(w) => write!(f, "table width {w} outside 1..=64"),
            TableError::EntryTooWide { index, value } => {
                write!(
                    f,
                    "table entry {index} (value {value}) wider than the table width"
                )
            }
        }
    }
}

impl Error for TableError {}

impl LookupTable {
    /// Creates a table from its entry values.
    ///
    /// # Errors
    ///
    /// Returns a [`TableError`] if the table is empty, the width is not in
    /// `1..=64`, or an entry does not fit in `width` bits.
    pub fn new(entries: Vec<u64>, width: u8) -> Result<Self, TableError> {
        if entries.is_empty() {
            return Err(TableError::Empty);
        }
        if !(1..=64).contains(&width) {
            return Err(TableError::BadWidth(width));
        }
        let limit = crate::prim::mask(u64::MAX, width);
        for (index, &value) in entries.iter().enumerate() {
            if value > limit {
                return Err(TableError::EntryTooWide { index, value });
            }
        }
        Ok(LookupTable { entries, width })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Tables are never empty; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Bit-width of each entry.
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Looks up `index` (taken modulo the table length, matching a
    /// hardware address decoder that ignores high bits).
    pub fn lookup(&self, index: u64) -> u64 {
        self.entries[(index % self.entries.len() as u64) as usize]
    }

    /// The raw entries.
    pub fn entries(&self) -> &[u64] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert_eq!(LookupTable::new(vec![], 8), Err(TableError::Empty));
        assert_eq!(LookupTable::new(vec![1], 0), Err(TableError::BadWidth(0)));
        assert_eq!(LookupTable::new(vec![1], 65), Err(TableError::BadWidth(65)));
        assert_eq!(
            LookupTable::new(vec![0, 256], 8),
            Err(TableError::EntryTooWide {
                index: 1,
                value: 256
            })
        );
    }

    #[test]
    fn lookup_wraps_index() {
        let t = LookupTable::new(vec![5, 6, 7], 8).unwrap();
        assert_eq!(t.lookup(0), 5);
        assert_eq!(t.lookup(2), 7);
        assert_eq!(t.lookup(3), 5);
        assert_eq!(t.lookup(100), t.lookup(100 % 3));
    }

    #[test]
    fn accessors() {
        let t = LookupTable::new(vec![1, 2], 4).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.width(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.entries(), &[1, 2]);
    }

    #[test]
    fn full_width_entries_allowed() {
        let t = LookupTable::new(vec![u64::MAX], 64).unwrap();
        assert_eq!(t.lookup(0), u64::MAX);
    }
}
