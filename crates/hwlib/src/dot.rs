//! Graphviz export of dataflow graphs.
//!
//! [`DfGraph::to_dot`] renders the custom datapath as a `dot` digraph —
//! inputs as ellipses, constants as plain text, combinational primitives
//! as boxes colored by hardware-library category, outputs double-circled —
//! so a designer can *see* the hardware a TIE description elaborates to.

use std::fmt::Write as _;

use crate::{Category, DfGraph, PrimOp};

/// Fill color per hardware-library category (pastel Graphviz X11 names).
fn category_color(category: Category) -> &'static str {
    match category {
        Category::Multiplier => "lightsalmon",
        Category::AdderCmp => "lightblue",
        Category::LogicMux => "lightgrey",
        Category::Shifter => "khaki",
        Category::CustomReg => "plum",
        Category::TieMult => "salmon",
        Category::TieMac => "coral",
        Category::TieAdd => "skyblue",
        Category::TieCsa => "powderblue",
        Category::Table => "palegreen",
    }
}

impl DfGraph {
    /// Renders the graph in Graphviz `dot` syntax.
    ///
    /// # Example
    ///
    /// ```
    /// use emx_hwlib::{DfGraph, PrimOp};
    ///
    /// let mut g = DfGraph::new();
    /// let a = g.input("a", 8);
    /// let b = g.input("b", 8);
    /// let s = g.node(PrimOp::Add, 8, &[a, b]).unwrap();
    /// g.output(s);
    /// let dot = g.to_dot("adder");
    /// assert!(dot.starts_with("digraph adder"));
    /// assert!(dot.contains("Add"));
    /// ```
    pub fn to_dot(&self, name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph {name} {{");
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  node [fontname=\"monospace\", fontsize=10];");

        // Inputs.
        for (&id, (label, width)) in self.input_ids().iter().zip(self.input_signature()) {
            let _ = writeln!(
                out,
                "  n{} [label=\"{label}\\n[{width}b]\", shape=ellipse, style=filled, fillcolor=white];",
                id.index()
            );
        }
        // Operation nodes.
        for info in self.op_nodes() {
            let op_label = match info.op {
                PrimOp::TableLookup { .. } => format!("table[{}]", info.entries),
                PrimOp::Slice { lsb } => format!("slice[{lsb}..]"),
                PrimOp::Pack { lsb } => format!("pack@{lsb}"),
                other => format!("{other:?}"),
            };
            let _ = writeln!(
                out,
                "  n{} [label=\"{op_label}\\n[{}b]\", shape=box, style=filled, fillcolor={}];",
                info.id.index(),
                info.width,
                category_color(info.category)
            );
            for input in &info.inputs {
                let _ = writeln!(out, "  n{} -> n{};", input.index(), info.id.index());
            }
        }
        // Constants appear only as edge sources; give them plain nodes.
        for idx in 0..self.node_count() {
            let is_input = self.input_ids().iter().any(|i| i.index() == idx);
            let is_op = self.op_nodes().iter().any(|o| o.id.index() == idx);
            if !is_input && !is_op {
                let _ = writeln!(
                    out,
                    "  n{idx} [label=\"const\\n[{}b]\", shape=plaintext];",
                    self.width(crate::NodeId::from_index_for_dot(idx))
                );
            }
        }
        // Outputs.
        for (k, id) in self.output_ids().iter().enumerate() {
            let _ = writeln!(out, "  out{k} [label=\"out{k}\", shape=doublecircle];");
            let _ = writeln!(out, "  n{} -> out{k};", id.index());
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LookupTable;

    #[test]
    fn dot_contains_every_node_kind() {
        let mut g = DfGraph::new();
        let a = g.input("a", 8);
        let t = g.add_table(LookupTable::new(vec![1, 2, 3, 4], 4).unwrap());
        let k = g.constant(3, 8).unwrap();
        let x = g.node(PrimOp::Xor, 8, &[a, k]).unwrap();
        let lk = g
            .node(PrimOp::TableLookup { table_index: t }, 4, &[x])
            .unwrap();
        g.output(lk);
        let dot = g.to_dot("demo");
        assert!(dot.contains("shape=ellipse"));
        assert!(dot.contains("const"));
        assert!(dot.contains("Xor"));
        assert!(dot.contains("table[4]"));
        assert!(dot.contains("doublecircle"));
        // Every edge references declared nodes.
        assert!(dot.matches(" -> ").count() >= 3);
    }

    #[test]
    fn categories_get_distinct_colors() {
        use std::collections::BTreeSet;
        let colors: BTreeSet<_> = Category::ALL.iter().map(|&c| category_color(c)).collect();
        assert_eq!(colors.len(), 10);
    }
}
