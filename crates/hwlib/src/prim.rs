use std::fmt;

use crate::Category;

/// Masks `v` to the low `width` bits (`width` ∈ 1..=64).
///
/// This is the bus-truncation rule every datapath node applies to its
/// result; exported so oracles (tests, fuzzers) share the exact semantics
/// instead of re-implementing them.
pub fn mask(v: u64, width: u8) -> u64 {
    debug_assert!((1..=64).contains(&width));
    if width == 64 {
        v
    } else {
        v & ((1u64 << width) - 1)
    }
}

/// Sign-extends the `width`-bit value `v` to `i64` (`width` ∈ 1..=64) —
/// the signed-operand interpretation rule, exported for the same reason
/// as [`mask`].
pub fn sext(v: u64, width: u8) -> i64 {
    debug_assert!((1..=64).contains(&width));
    let shift = 64 - u32::from(width);
    ((v << shift) as i64) >> shift
}

/// A primitive operation a datapath node can perform.
///
/// Each operation belongs to one of the paper's ten [`Category`]s; the
/// mapping follows the paper's classification of "the basic primitives"
/// plus the "specialized modules available for TIE instructions".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PrimOp {
    // --- category 1: multiplier -------------------------------------------
    /// Unsigned multiply (low `width` bits of the product).
    Mul,
    /// Signed multiply (low `width` bits of the product).
    MulS,
    // --- category 2: adder / subtractor / comparator -----------------------
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Unsigned less-than comparison (1-bit result).
    CmpLtu,
    /// Signed less-than comparison (1-bit result).
    CmpLts,
    /// Equality comparison (1-bit result).
    CmpEq,
    /// Unsigned maximum.
    MaxU,
    /// Unsigned minimum.
    MinU,
    // --- category 3: bit-wise logic / reduction / mux ----------------------
    /// Bit-wise AND.
    And,
    /// Bit-wise OR.
    Or,
    /// Bit-wise XOR.
    Xor,
    /// Bit-wise NOT (one input).
    Not,
    /// 2:1 multiplexer `mux(sel, a, b)`: `a` if the LSB of `sel` is 1,
    /// else `b`.
    Mux,
    /// AND-reduction of all input bits (1-bit result).
    RedAnd,
    /// OR-reduction of all input bits (1-bit result).
    RedOr,
    /// XOR-reduction (parity) of all input bits (1-bit result).
    RedXor,
    /// Bit-field extraction by a *constant* offset: `(in >> lsb)` masked
    /// to the node width. Constant extraction is wiring in hardware, so
    /// this belongs to the cheap logic category, unlike the variable
    /// [`PrimOp::Shr`].
    Slice {
        /// Least-significant source bit of the extracted field.
        lsb: u8,
    },
    /// Bit-field merge by a *constant* offset: `a | (b << lsb)` (wiring
    /// plus an OR).
    Pack {
        /// Position at which `b` is inserted.
        lsb: u8,
    },
    // --- category 4: shifter ------------------------------------------------
    /// Logical left shift by the second operand (mod 64).
    Shl,
    /// Logical right shift by the second operand (mod 64).
    Shr,
    /// Arithmetic right shift by the second operand (mod 64), with respect
    /// to the node width.
    Sar,
    // --- category 6..9: specialized TIE modules -----------------------------
    /// `TIE_mult`: fused multiplier module (unsigned, low bits).
    TieMult,
    /// `TIE_mac`: fused multiply–accumulate `a*b + c`.
    TieMac,
    /// `TIE_add`: three-operand addition `a + b + c`.
    TieAdd,
    /// `TIE_csa` sum output: `a ⊕ b ⊕ c`.
    TieCsaSum,
    /// `TIE_csa` carry output: `majority(a,b,c) << 1`.
    TieCsaCarry,
    // --- category 10: table --------------------------------------------------
    /// Lookup into the graph's table `table_index`, addressed by the single
    /// input (modulo the table length).
    TableLookup {
        /// Index of the table in the owning graph.
        table_index: usize,
    },
}

impl PrimOp {
    /// The hardware-library category the operation's component belongs to.
    ///
    /// Custom registers ([`Category::CustomReg`]) are state elements rather
    /// than combinational primitives, so no `PrimOp` maps to them; their
    /// activity is accounted by the extension framework when a custom
    /// instruction reads or writes custom state.
    pub fn category(self) -> Category {
        match self {
            PrimOp::Mul | PrimOp::MulS => Category::Multiplier,
            PrimOp::Add
            | PrimOp::Sub
            | PrimOp::CmpLtu
            | PrimOp::CmpLts
            | PrimOp::CmpEq
            | PrimOp::MaxU
            | PrimOp::MinU => Category::AdderCmp,
            PrimOp::And
            | PrimOp::Or
            | PrimOp::Xor
            | PrimOp::Not
            | PrimOp::Mux
            | PrimOp::RedAnd
            | PrimOp::RedOr
            | PrimOp::RedXor
            | PrimOp::Slice { .. }
            | PrimOp::Pack { .. } => Category::LogicMux,
            PrimOp::Shl | PrimOp::Shr | PrimOp::Sar => Category::Shifter,
            PrimOp::TieMult => Category::TieMult,
            PrimOp::TieMac => Category::TieMac,
            PrimOp::TieAdd => Category::TieAdd,
            PrimOp::TieCsaSum | PrimOp::TieCsaCarry => Category::TieCsa,
            PrimOp::TableLookup { .. } => Category::Table,
        }
    }

    /// Number of inputs the operation takes.
    pub fn arity(self) -> usize {
        match self {
            PrimOp::Not
            | PrimOp::RedAnd
            | PrimOp::RedOr
            | PrimOp::RedXor
            | PrimOp::Slice { .. }
            | PrimOp::TableLookup { .. } => 1,
            PrimOp::Mul
            | PrimOp::MulS
            | PrimOp::Add
            | PrimOp::Sub
            | PrimOp::CmpLtu
            | PrimOp::CmpLts
            | PrimOp::CmpEq
            | PrimOp::MaxU
            | PrimOp::MinU
            | PrimOp::And
            | PrimOp::Or
            | PrimOp::Xor
            | PrimOp::Shl
            | PrimOp::Shr
            | PrimOp::Sar
            | PrimOp::Pack { .. }
            | PrimOp::TieMult => 2,
            PrimOp::Mux
            | PrimOp::TieMac
            | PrimOp::TieAdd
            | PrimOp::TieCsaSum
            | PrimOp::TieCsaCarry => 3,
        }
    }

    /// Evaluates the operation on `inputs`, producing a `width`-bit result.
    ///
    /// `tables` supplies lookup-table contents for
    /// [`PrimOp::TableLookup`]; the input widths are the widths of the
    /// producing nodes (needed for signed interpretation).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.arity()` — the graph validates arity
    /// at construction, so this indicates a bug in the caller.
    pub(crate) fn eval(
        self,
        inputs: &[u64],
        input_widths: &[u8],
        width: u8,
        tables: &[crate::LookupTable],
    ) -> u64 {
        assert_eq!(inputs.len(), self.arity(), "arity mismatch for {self}");
        let v = |i: usize| inputs[i];
        let s = |i: usize| sext(inputs[i], input_widths[i]);
        let result: u64 = match self {
            PrimOp::Mul | PrimOp::TieMult => v(0).wrapping_mul(v(1)),
            PrimOp::MulS => (s(0).wrapping_mul(s(1))) as u64,
            PrimOp::Add => v(0).wrapping_add(v(1)),
            PrimOp::Sub => v(0).wrapping_sub(v(1)),
            PrimOp::CmpLtu => u64::from(v(0) < v(1)),
            PrimOp::CmpLts => u64::from(s(0) < s(1)),
            PrimOp::CmpEq => u64::from(v(0) == v(1)),
            PrimOp::MaxU => v(0).max(v(1)),
            PrimOp::MinU => v(0).min(v(1)),
            PrimOp::And => v(0) & v(1),
            PrimOp::Or => v(0) | v(1),
            PrimOp::Xor => v(0) ^ v(1),
            PrimOp::Not => !v(0),
            PrimOp::Mux => {
                if v(0) & 1 == 1 {
                    v(1)
                } else {
                    v(2)
                }
            }
            PrimOp::RedAnd => u64::from(v(0) == mask(u64::MAX, input_widths[0])),
            PrimOp::RedOr => u64::from(v(0) != 0),
            PrimOp::RedXor => u64::from(v(0).count_ones() % 2 == 1),
            PrimOp::Shl => v(0).wrapping_shl(v(1) as u32 & 63),
            PrimOp::Shr => v(0).wrapping_shr(v(1) as u32 & 63),
            PrimOp::Sar => {
                let shift = v(1) as u32 & 63;
                (sext(v(0), input_widths[0]) >> shift.min(63)) as u64
            }
            PrimOp::TieMac => v(0).wrapping_mul(v(1)).wrapping_add(v(2)),
            PrimOp::TieAdd => v(0).wrapping_add(v(1)).wrapping_add(v(2)),
            PrimOp::Slice { lsb } => v(0) >> lsb.min(63),
            PrimOp::Pack { lsb } => v(0) | (v(1) << lsb.min(63)),
            PrimOp::TieCsaSum => v(0) ^ v(1) ^ v(2),
            PrimOp::TieCsaCarry => ((v(0) & v(1)) | (v(1) & v(2)) | (v(0) & v(2))) << 1,
            PrimOp::TableLookup { table_index } => tables[table_index].lookup(v(0)),
        };
        mask(result, width)
    }
}

impl fmt::Display for PrimOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrimOp::TableLookup { table_index } => write!(f, "table[{table_index}]"),
            PrimOp::Slice { lsb } => write!(f, "slice[{lsb}..]"),
            PrimOp::Pack { lsb } => write!(f, "pack[{lsb}]"),
            other => write!(f, "{other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(op: PrimOp, inputs: &[u64], widths: &[u8], out: u8) -> u64 {
        op.eval(inputs, widths, out, &[])
    }

    #[test]
    fn masking_and_sign_extension() {
        assert_eq!(mask(0x1ff, 8), 0xff);
        assert_eq!(mask(u64::MAX, 64), u64::MAX);
        assert_eq!(sext(0x80, 8), -128);
        assert_eq!(sext(0x7f, 8), 127);
    }

    #[test]
    fn arithmetic_ops() {
        assert_eq!(ev(PrimOp::Add, &[200, 100], &[8, 8], 8), 44); // wraps at 8 bits
        assert_eq!(ev(PrimOp::Sub, &[5, 7], &[8, 8], 8), 254);
        assert_eq!(ev(PrimOp::Mul, &[7, 6], &[8, 8], 8), 42);
        assert_eq!(
            ev(PrimOp::MulS, &[0xff, 3], &[8, 8], 16),
            mask((-3i64) as u64, 16)
        );
    }

    #[test]
    fn comparisons() {
        assert_eq!(ev(PrimOp::CmpLtu, &[3, 5], &[8, 8], 1), 1);
        assert_eq!(ev(PrimOp::CmpLts, &[0xff, 0], &[8, 8], 1), 1); // -1 < 0
        assert_eq!(ev(PrimOp::CmpEq, &[9, 9], &[8, 8], 1), 1);
        assert_eq!(ev(PrimOp::MaxU, &[3, 5], &[8, 8], 8), 5);
        assert_eq!(ev(PrimOp::MinU, &[3, 5], &[8, 8], 8), 3);
    }

    #[test]
    fn logic_and_reductions() {
        assert_eq!(ev(PrimOp::And, &[0b1100, 0b1010], &[4, 4], 4), 0b1000);
        assert_eq!(ev(PrimOp::Or, &[0b1100, 0b1010], &[4, 4], 4), 0b1110);
        assert_eq!(ev(PrimOp::Xor, &[0b1100, 0b1010], &[4, 4], 4), 0b0110);
        assert_eq!(ev(PrimOp::Not, &[0b1100], &[4], 4), 0b0011);
        assert_eq!(ev(PrimOp::RedAnd, &[0b1111], &[4], 1), 1);
        assert_eq!(ev(PrimOp::RedAnd, &[0b1101], &[4], 1), 0);
        assert_eq!(ev(PrimOp::RedOr, &[0], &[4], 1), 0);
        assert_eq!(ev(PrimOp::RedXor, &[0b0111], &[4], 1), 1);
    }

    #[test]
    fn mux_selects() {
        assert_eq!(ev(PrimOp::Mux, &[1, 0xaa, 0x55], &[1, 8, 8], 8), 0xaa);
        assert_eq!(ev(PrimOp::Mux, &[0, 0xaa, 0x55], &[1, 8, 8], 8), 0x55);
    }

    #[test]
    fn shifts() {
        assert_eq!(ev(PrimOp::Shl, &[1, 4], &[8, 8], 8), 16);
        assert_eq!(ev(PrimOp::Shr, &[0x80, 7], &[8, 8], 8), 1);
        assert_eq!(ev(PrimOp::Sar, &[0x80, 7], &[8, 8], 8), 0xff); // sign bit smears
    }

    #[test]
    fn tie_modules() {
        assert_eq!(ev(PrimOp::TieMult, &[4, 5], &[8, 8], 16), 20);
        assert_eq!(ev(PrimOp::TieMac, &[4, 5, 2], &[8, 8, 16], 16), 22);
        assert_eq!(ev(PrimOp::TieAdd, &[1, 2, 3], &[8, 8, 8], 8), 6);
        // CSA invariant: sum + carry == a + b + c.
        let (a, b, c) = (13u64, 29u64, 7u64);
        let s = ev(PrimOp::TieCsaSum, &[a, b, c], &[8, 8, 8], 16);
        let k = ev(PrimOp::TieCsaCarry, &[a, b, c], &[8, 8, 8], 16);
        assert_eq!(s + k, a + b + c);
    }

    #[test]
    fn table_lookup_uses_graph_tables() {
        let t = crate::LookupTable::new(vec![10, 20, 30, 40], 8).unwrap();
        let v = PrimOp::TableLookup { table_index: 0 }.eval(&[2], &[8], 8, &[t]);
        assert_eq!(v, 30);
    }

    #[test]
    fn categories_cover_nine_combinational_kinds() {
        // Every category except CustomReg is reachable from some PrimOp.
        use std::collections::BTreeSet;
        let ops = [
            PrimOp::Mul,
            PrimOp::Add,
            PrimOp::And,
            PrimOp::Shl,
            PrimOp::TieMult,
            PrimOp::TieMac,
            PrimOp::TieAdd,
            PrimOp::TieCsaSum,
            PrimOp::TableLookup { table_index: 0 },
        ];
        let cats: BTreeSet<_> = ops.iter().map(|o| o.category()).collect();
        assert_eq!(cats.len(), 9);
        assert!(!cats.contains(&Category::CustomReg));
    }
}
