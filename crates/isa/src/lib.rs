//! Base instruction set of the `emx` extensible processor.
//!
//! The reproduced paper characterizes Tensilica's Xtensa core, whose base
//! ISA "defines approximately 80 instructions" around "a traditional
//! five-stage RISC pipeline with a 32-bit address space". This crate defines
//! an original 32-bit RISC ISA of comparable size and shape, playing the
//! role of the fixed base processor:
//!
//! * [`Reg`] — the 16 architectural general-purpose registers `a0..a15`
//!   (the characterized configuration maps them onto a 64-entry physical
//!   register file, as in the paper's Xtensa configuration),
//! * [`Opcode`] — the ~80 base instructions, each tagged with its static
//!   [`BaseClass`] (arithmetic, load, store, jump, branch — branches are
//!   split into taken/untaken *dynamically* by the simulator),
//! * [`Inst`] / [`BaseInst`] / [`CustomSlot`] — decoded instructions; custom
//!   (TIE-like) instructions are carried opaquely by [`CustomId`] and given
//!   meaning by the `emx-tie` crate,
//! * [`Program`] — an assembled program: text, data, symbols, entry point,
//! * [`asm`] — a two-pass assembler with labels, data directives and
//!   support for registering custom-instruction mnemonics,
//! * [`ProgramBuilder`] — programmatic program construction for tests and
//!   generated workloads.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use emx_isa::asm::Assembler;
//!
//! let program = Assembler::new().assemble(
//!     r#"
//!     .text
//!     start:
//!         movi    a2, 10
//!         movi    a3, 0
//!     loop:
//!         add     a3, a3, a2
//!         addi    a2, a2, -1
//!         bnez    a2, loop
//!         halt
//!     "#,
//! )?;
//! assert_eq!(program.text().len(), 6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
mod builder;
mod class;
mod encode;
mod inst;
/// Opcode tables: mnemonics, formats, classes and functional units.
pub mod op;
/// Program representation and the platform memory layout.
pub mod program;
mod reg;

pub use builder::{BuildProgramError, ProgramBuilder};
pub use class::{BaseClass, DynClass};
pub use encode::{encode, hamming};
pub use inst::{BaseInst, CustomId, CustomSlot, Inst};
pub use op::{Format, Opcode};
pub use program::{layout, Program};
pub use reg::{ParseRegError, Reg};
