use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::program::layout;
use crate::{BaseInst, Format, Inst, Opcode, Program, Reg};

/// Error returned by [`ProgramBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildProgramError {
    /// The same label was defined twice.
    DuplicateLabel(String),
    /// A referenced label was never defined.
    UnknownLabel(String),
}

impl fmt::Display for BuildProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildProgramError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            BuildProgramError::UnknownLabel(l) => write!(f, "unknown label `{l}`"),
        }
    }
}

impl Error for BuildProgramError {}

#[derive(Debug, Clone)]
struct Fixup {
    inst_index: usize,
    label: String,
}

/// Programmatic construction of [`Program`]s with label fix-ups.
///
/// Useful for tests and generated workloads; hand-written workloads use the
/// textual [assembler](crate::asm) instead.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use emx_isa::{BaseInst, Opcode, ProgramBuilder, Reg};
///
/// let mut b = ProgramBuilder::new();
/// let (a2, a3) = (Reg::new(2), Reg::new(3));
/// b.inst(BaseInst::movi(a2, 5));
/// b.inst(BaseInst::movi(a3, 0));
/// b.label("loop")?;
/// b.inst(BaseInst::rrr(Opcode::Add, a3, a3, a2));
/// b.inst(BaseInst::rri(Opcode::Addi, a2, a2, -1));
/// b.branch_rz_to(Opcode::Bnez, a2, "loop");
/// b.inst(BaseInst::bare(Opcode::Halt));
/// let program = b.build()?;
/// assert_eq!(program.len(), 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    text: Vec<Inst>,
    text_base: u32,
    data: Vec<u8>,
    symbols: BTreeMap<String, u32>,
    fixups: Vec<Fixup>,
    duplicate: Option<String>,
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramBuilder {
    /// Creates an empty builder with text at [`layout::TEXT_BASE`].
    pub fn new() -> Self {
        ProgramBuilder {
            text: Vec::new(),
            text_base: layout::TEXT_BASE,
            data: Vec::new(),
            symbols: BTreeMap::new(),
            fixups: Vec::new(),
            duplicate: None,
        }
    }

    /// Creates a builder whose text segment lives at `text_base` — e.g.
    /// [`layout::UNCACHED_BASE`] for programs that exercise uncached
    /// instruction fetches.
    ///
    /// # Panics
    ///
    /// Panics if `text_base` is not 4-byte aligned.
    pub fn with_text_base(text_base: u32) -> Self {
        assert_eq!(
            text_base % layout::INST_BYTES,
            0,
            "text base must be aligned"
        );
        ProgramBuilder {
            text_base,
            ..Self::new()
        }
    }

    /// Appends an instruction; returns its index in the text stream.
    pub fn inst(&mut self, inst: impl Into<Inst>) -> usize {
        self.text.push(inst.into());
        self.text.len() - 1
    }

    /// Defines a code label at the current text position.
    ///
    /// # Errors
    ///
    /// Returns [`BuildProgramError::DuplicateLabel`] if the label already
    /// exists (either as a code or a data label).
    pub fn label(&mut self, name: &str) -> Result<(), BuildProgramError> {
        let addr = self.text_base + (self.text.len() as u32) * layout::INST_BYTES;
        self.define(name, addr)
    }

    /// Defines a data label at the current data position.
    ///
    /// # Errors
    ///
    /// Returns [`BuildProgramError::DuplicateLabel`] if the label already
    /// exists.
    pub fn data_label(&mut self, name: &str) -> Result<(), BuildProgramError> {
        let addr = layout::DATA_BASE + self.data.len() as u32;
        self.define(name, addr)
    }

    fn define(&mut self, name: &str, addr: u32) -> Result<(), BuildProgramError> {
        if self.symbols.insert(name.to_owned(), addr).is_some() {
            self.duplicate = Some(name.to_owned());
            return Err(BuildProgramError::DuplicateLabel(name.to_owned()));
        }
        Ok(())
    }

    /// Appends a little-endian 32-bit word to the data segment; returns its
    /// address.
    pub fn word(&mut self, value: u32) -> u32 {
        let addr = layout::DATA_BASE + self.data.len() as u32;
        self.data.extend_from_slice(&value.to_le_bytes());
        addr
    }

    /// Appends words to the data segment; returns the address of the first.
    pub fn words(&mut self, values: &[u32]) -> u32 {
        let addr = layout::DATA_BASE + self.data.len() as u32;
        for &v in values {
            self.word(v);
        }
        addr
    }

    /// Appends raw bytes to the data segment; returns the address of the
    /// first.
    pub fn bytes(&mut self, bytes: &[u8]) -> u32 {
        let addr = layout::DATA_BASE + self.data.len() as u32;
        self.data.extend_from_slice(bytes);
        addr
    }

    /// Reserves `n` zero bytes in the data segment; returns their address.
    pub fn space(&mut self, n: usize) -> u32 {
        let addr = layout::DATA_BASE + self.data.len() as u32;
        self.data.resize(self.data.len() + n, 0);
        addr
    }

    /// Pads the data segment to an `n`-byte boundary.
    pub fn align(&mut self, n: usize) {
        debug_assert!(n.is_power_of_two(), "alignment must be a power of two");
        while !self.data.len().is_multiple_of(n) {
            self.data.push(0);
        }
    }

    /// Appends a jump/call to a label (`j`, `call`).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `op` is not a [`Format::Target`] opcode.
    pub fn jump_to(&mut self, op: Opcode, label: &str) -> usize {
        debug_assert_eq!(op.format(), Format::Target);
        let idx = self.inst(BaseInst {
            op,
            ..Default::default()
        });
        self.fixups.push(Fixup {
            inst_index: idx,
            label: label.to_owned(),
        });
        idx
    }

    /// Appends a two-register branch to a label.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `op` is not a [`Format::BranchRr`] opcode.
    pub fn branch_rr_to(&mut self, op: Opcode, rs: Reg, rt: Reg, label: &str) -> usize {
        debug_assert_eq!(op.format(), Format::BranchRr);
        let idx = self.inst(BaseInst {
            op,
            rs,
            rt,
            ..Default::default()
        });
        self.fixups.push(Fixup {
            inst_index: idx,
            label: label.to_owned(),
        });
        idx
    }

    /// Appends a compare-with-zero branch to a label.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `op` is not a [`Format::BranchRz`] opcode.
    pub fn branch_rz_to(&mut self, op: Opcode, rs: Reg, label: &str) -> usize {
        debug_assert_eq!(op.format(), Format::BranchRz);
        let idx = self.inst(BaseInst {
            op,
            rs,
            ..Default::default()
        });
        self.fixups.push(Fixup {
            inst_index: idx,
            label: label.to_owned(),
        });
        idx
    }

    /// Appends a compare-with-immediate branch to a label.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `op` is not a [`Format::BranchRi`] opcode.
    pub fn branch_ri_to(&mut self, op: Opcode, rs: Reg, imm: i32, label: &str) -> usize {
        debug_assert_eq!(op.format(), Format::BranchRi);
        let idx = self.inst(BaseInst {
            op,
            rs,
            imm,
            ..Default::default()
        });
        self.fixups.push(Fixup {
            inst_index: idx,
            label: label.to_owned(),
        });
        idx
    }

    /// Appends an `l32r` that loads the 32-bit word at a data label.
    pub fn l32r_label(&mut self, rd: Reg, label: &str) -> usize {
        let idx = self.inst(BaseInst {
            op: Opcode::L32r,
            rd,
            ..Default::default()
        });
        self.fixups.push(Fixup {
            inst_index: idx,
            label: label.to_owned(),
        });
        idx
    }

    /// Loads the *address* of a label into `rd` (expands to `movi`-style
    /// materialization via `movi` + `addmi` when the address is large).
    ///
    /// Addresses in this platform fit in 31 bits, and `movi` carries a full
    /// 32-bit immediate in the decoded form, so a single `movi` suffices;
    /// this helper exists so call sites stay intention-revealing.
    pub fn load_address(&mut self, rd: Reg, label: &str) -> usize {
        let idx = self.inst(BaseInst::movi(rd, 0));
        self.fixups.push(Fixup {
            inst_index: idx,
            label: label.to_owned(),
        });
        idx
    }

    /// Resolves all fix-ups and produces the program.
    ///
    /// The entry point is the start of the text segment.
    ///
    /// # Errors
    ///
    /// Returns [`BuildProgramError::UnknownLabel`] if any referenced label
    /// was never defined, or [`BuildProgramError::DuplicateLabel`] if a
    /// duplicate definition occurred earlier.
    pub fn build(mut self) -> Result<Program, BuildProgramError> {
        if let Some(dup) = self.duplicate.take() {
            return Err(BuildProgramError::DuplicateLabel(dup));
        }
        for fixup in &self.fixups {
            let &addr = self
                .symbols
                .get(&fixup.label)
                .ok_or_else(|| BuildProgramError::UnknownLabel(fixup.label.clone()))?;
            match &mut self.text[fixup.inst_index] {
                Inst::Base(b) => {
                    if b.op == Opcode::Movi {
                        b.imm = addr as i32;
                    } else {
                        b.target = addr;
                    }
                }
                Inst::Custom(_) => unreachable!("fix-ups only attach to base instructions"),
            }
        }
        Ok(Program::new(
            self.text,
            self.text_base,
            self.data,
            layout::DATA_BASE,
            self.text_base,
            self.symbols,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn builds_loop_with_backward_branch() {
        let mut b = ProgramBuilder::new();
        b.inst(BaseInst::movi(r(2), 3));
        b.label("top").unwrap();
        b.inst(BaseInst::rri(Opcode::Addi, r(2), r(2), -1));
        b.branch_rz_to(Opcode::Bnez, r(2), "top");
        b.inst(BaseInst::bare(Opcode::Halt));
        let p = b.build().unwrap();
        match &p.text()[2] {
            Inst::Base(bi) => assert_eq!(bi.target, 4),
            _ => panic!("expected base inst"),
        }
    }

    #[test]
    fn forward_reference_resolves() {
        let mut b = ProgramBuilder::new();
        b.jump_to(Opcode::J, "end");
        b.inst(BaseInst::bare(Opcode::Nop));
        b.label("end").unwrap();
        b.inst(BaseInst::bare(Opcode::Halt));
        let p = b.build().unwrap();
        match &p.text()[0] {
            Inst::Base(bi) => assert_eq!(bi.target, 8),
            _ => panic!(),
        }
    }

    #[test]
    fn unknown_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.jump_to(Opcode::J, "nowhere");
        b.inst(BaseInst::bare(Opcode::Halt));
        assert_eq!(
            b.build(),
            Err(BuildProgramError::UnknownLabel("nowhere".into()))
        );
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.label("x").unwrap();
        b.inst(BaseInst::bare(Opcode::Nop));
        assert!(b.label("x").is_err());
        b.inst(BaseInst::bare(Opcode::Halt));
        assert!(matches!(
            b.build(),
            Err(BuildProgramError::DuplicateLabel(_))
        ));
    }

    #[test]
    fn data_segment_and_l32r() {
        let mut b = ProgramBuilder::new();
        b.data_label("k").unwrap();
        let addr = b.word(0xdead_beef);
        b.l32r_label(r(2), "k");
        b.inst(BaseInst::bare(Opcode::Halt));
        let p = b.build().unwrap();
        assert_eq!(p.symbol("k"), Some(addr));
        match &p.text()[0] {
            Inst::Base(bi) => assert_eq!(bi.target, addr),
            _ => panic!(),
        }
        assert_eq!(&p.data()[0..4], &0xdead_beef_u32.to_le_bytes());
    }

    #[test]
    fn load_address_materializes_symbol() {
        let mut b = ProgramBuilder::new();
        b.data_label("buf").unwrap();
        b.space(16);
        b.load_address(r(5), "buf");
        b.inst(BaseInst::bare(Opcode::Halt));
        let p = b.build().unwrap();
        match &p.text()[0] {
            Inst::Base(bi) => {
                assert_eq!(bi.op, Opcode::Movi);
                assert_eq!(bi.imm as u32, layout::DATA_BASE);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn align_pads_data() {
        let mut b = ProgramBuilder::new();
        b.bytes(&[1, 2, 3]);
        b.align(4);
        assert_eq!(b.word(7) % 4, 0);
    }
}
