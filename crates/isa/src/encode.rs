//! Binary encoding of instructions.
//!
//! The simulator and the structural energy model need a concrete bit
//! pattern per instruction: instruction-fetch and decode energy depends on
//! the Hamming distance between consecutively fetched words (the paper's
//! finer-grained related work — e.g. Lee et al. — models exactly this
//! effect, and our RTL-level reference estimator includes it so that the
//! macro-model has realistic, not-perfectly-linear ground truth to fit).
//!
//! The encoding is a simple fixed 32-bit layout:
//!
//! ```text
//!  31       24 23    20 19    16 15    12 11            0
//! +-----------+--------+--------+--------+---------------+
//! |  opcode   |   rd   |   rs   |   rt   |   imm[11:0]   |  base
//! +-----------+--------+--------+--------+---------------+
//! | 0xC0 | id |   rd   |   rs   |   rt   |   imm[11:0]   |  custom
//! +-----------+--------+--------+--------+---------------+
//! ```
//!
//! Branch/jump targets participate via their low 12 bits, which is enough
//! for switching-activity purposes.

use crate::Inst;
#[cfg(test)]
use crate::Opcode;

/// Opcode-byte offset at which custom instructions are encoded.
pub const CUSTOM_OPCODE_BASE: u32 = 0xC0;

/// Encodes an instruction into its 32-bit binary form.
///
/// # Example
///
/// ```
/// use emx_isa::{encode, BaseInst, Opcode, Reg};
///
/// let add = BaseInst::rrr(Opcode::Add, Reg::new(2), Reg::new(3), Reg::new(4));
/// let word = encode(&add.into());
/// assert_eq!(word >> 24, Opcode::Add.index() as u32);
/// ```
pub fn encode(inst: &Inst) -> u32 {
    match inst {
        Inst::Base(b) => {
            let op = (b.op.index() as u32) << 24;
            let rd = (b.rd.index() as u32) << 20;
            let rs = (b.rs.index() as u32) << 16;
            let rt = (b.rt.index() as u32) << 12;
            // Fold the field length (extui) and target into the immediate
            // bits so that they contribute to switching activity.
            let imm_bits = (b.imm as u32 ^ (u32::from(b.len) << 6) ^ (b.target >> 2)) & 0x0fff;
            op | rd | rs | rt | imm_bits
        }
        Inst::Custom(c) => {
            let op = (CUSTOM_OPCODE_BASE + u32::from(c.id.0)).min(0xff) << 24;
            let rd = (c.rd.index() as u32) << 20;
            let rs = (c.rs.index() as u32) << 16;
            let rt = (c.rt.index() as u32) << 12;
            op | rd | rs | rt | (c.imm as u32 & 0x0fff)
        }
    }
}

/// Hamming distance between two 32-bit words (number of differing bits).
pub fn hamming(a: u32, b: u32) -> u32 {
    (a ^ b).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BaseInst, CustomId, CustomSlot, Reg};

    #[test]
    fn base_encoding_packs_fields() {
        let i = BaseInst::rrr(Opcode::Sub, Reg::new(1), Reg::new(2), Reg::new(3));
        let w = encode(&i.into());
        assert_eq!(w >> 24, Opcode::Sub.index() as u32);
        assert_eq!((w >> 20) & 0xf, 1);
        assert_eq!((w >> 16) & 0xf, 2);
        assert_eq!((w >> 12) & 0xf, 3);
    }

    #[test]
    fn distinct_opcodes_have_distinct_encodings() {
        let a = encode(&BaseInst::bare(Opcode::Nop).into());
        let b = encode(&BaseInst::bare(Opcode::Halt).into());
        assert_ne!(a, b);
    }

    #[test]
    fn custom_encoding_uses_high_opcode_space() {
        let c = CustomSlot {
            id: CustomId(2),
            rd: Reg::new(4),
            rs: Reg::new(5),
            rt: Reg::new(6),
            imm: 7,
        };
        let w = encode(&c.into());
        assert_eq!(w >> 24, CUSTOM_OPCODE_BASE + 2);
        // Custom opcode space does not collide with base opcodes.
        assert!(w >> 24 >= Opcode::ALL.len() as u32);
    }

    #[test]
    fn hamming_basics() {
        assert_eq!(hamming(0, 0), 0);
        assert_eq!(hamming(0, u32::MAX), 32);
        assert_eq!(hamming(0b1010, 0b0110), 2);
    }

    #[test]
    fn immediate_contributes_to_bits() {
        let a = encode(&BaseInst::movi(Reg::new(2), 1).into());
        let b = encode(&BaseInst::movi(Reg::new(2), 2).into());
        assert_ne!(a, b);
    }
}
