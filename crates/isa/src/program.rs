use std::collections::BTreeMap;
use std::fmt;

use crate::Inst;

/// Address-space layout constants of the emx platform.
///
/// The characterized configuration mirrors the paper's Xtensa setup: a
/// cached main-memory region served through 4-way 16 KB instruction and
/// data caches, plus an *uncached* region whose instruction fetches are
/// counted by the macro-model variable `n_ucf`.
pub mod layout {
    /// Base address of the text (code) segment.
    pub const TEXT_BASE: u32 = 0x0000_0000;
    /// Base address of the data segment.
    pub const DATA_BASE: u32 = 0x0004_0000;
    /// Initial stack pointer (stack grows downward).
    pub const STACK_TOP: u32 = 0x000f_fff0;
    /// Start of the uncached region. Fetches and data accesses at or above
    /// this address bypass the caches.
    pub const UNCACHED_BASE: u32 = 0x8000_0000;
    /// Size in bytes of one instruction.
    pub const INST_BYTES: u32 = 4;

    /// Returns `true` if `addr` falls in the uncached region.
    pub fn is_uncached(addr: u32) -> bool {
        addr >= UNCACHED_BASE
    }
}

/// An assembled program: instructions, initialized data, symbols and entry
/// point.
///
/// Instructions are held decoded (`Vec<Inst>`); addresses are byte
/// addresses with a fixed 4-byte instruction size, so the instruction at
/// text address `a` has index `(a − text_base) / 4`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    text: Vec<Inst>,
    text_base: u32,
    data: Vec<u8>,
    data_base: u32,
    entry: u32,
    symbols: BTreeMap<String, u32>,
}

impl Program {
    /// Creates a program from its parts.
    ///
    /// # Panics
    ///
    /// Panics if `entry` is not 4-byte aligned or lies outside the text
    /// segment.
    pub fn new(
        text: Vec<Inst>,
        text_base: u32,
        data: Vec<u8>,
        data_base: u32,
        entry: u32,
        symbols: BTreeMap<String, u32>,
    ) -> Self {
        assert_eq!(entry % layout::INST_BYTES, 0, "entry must be aligned");
        let end = text_base + (text.len() as u32) * layout::INST_BYTES;
        assert!(
            entry >= text_base && entry < end.max(text_base + 4),
            "entry 0x{entry:x} outside text segment"
        );
        Program {
            text,
            text_base,
            data,
            data_base,
            entry,
            symbols,
        }
    }

    /// The decoded instruction stream.
    pub fn text(&self) -> &[Inst] {
        &self.text
    }

    /// Base address of the text segment.
    pub fn text_base(&self) -> u32 {
        self.text_base
    }

    /// Initialized data bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Base address of the data segment.
    pub fn data_base(&self) -> u32 {
        self.data_base
    }

    /// Entry-point address.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Symbol table (label → address).
    pub fn symbols(&self) -> &BTreeMap<String, u32> {
        &self.symbols
    }

    /// Looks up a symbol's address.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Fetches the instruction at byte address `addr`, if it lies within
    /// the text segment.
    pub fn fetch(&self, addr: u32) -> Option<&Inst> {
        if addr < self.text_base || !addr.is_multiple_of(layout::INST_BYTES) {
            return None;
        }
        let index = ((addr - self.text_base) / layout::INST_BYTES) as usize;
        self.text.get(index)
    }

    /// Address of the instruction at `index` in the text stream.
    pub fn address_of(&self, index: usize) -> u32 {
        self.text_base + (index as u32) * layout::INST_BYTES
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Returns `true` if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Invert the symbol table for label annotation.
        let mut by_addr: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
        for (name, &addr) in &self.symbols {
            by_addr.entry(addr).or_default().push(name);
        }
        for (i, inst) in self.text.iter().enumerate() {
            let addr = self.address_of(i);
            if let Some(labels) = by_addr.get(&addr) {
                for l in labels {
                    writeln!(f, "{l}:")?;
                }
            }
            writeln!(f, "  0x{addr:06x}:  {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BaseInst, Opcode};

    fn tiny_program() -> Program {
        let text = vec![
            Inst::Base(BaseInst::movi(crate::Reg::new(2), 1)),
            Inst::Base(BaseInst::bare(Opcode::Halt)),
        ];
        Program::new(
            text,
            layout::TEXT_BASE,
            vec![1, 2, 3],
            layout::DATA_BASE,
            0,
            BTreeMap::new(),
        )
    }

    #[test]
    fn fetch_by_address() {
        let p = tiny_program();
        assert!(p.fetch(0).is_some());
        assert!(p.fetch(4).unwrap().is_halt());
        assert_eq!(p.fetch(8), None);
        assert_eq!(p.fetch(2), None); // unaligned
    }

    #[test]
    fn address_of_round_trips() {
        let p = tiny_program();
        for i in 0..p.len() {
            let addr = p.address_of(i);
            assert_eq!(p.fetch(addr), Some(&p.text()[i]));
        }
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_entry_rejected() {
        let _ = Program::new(vec![], 0, vec![], 0, 2, BTreeMap::new());
    }

    #[test]
    fn uncached_predicate() {
        assert!(!layout::is_uncached(0x1000));
        assert!(layout::is_uncached(layout::UNCACHED_BASE));
        assert!(layout::is_uncached(0xffff_fffc));
    }

    #[test]
    fn display_lists_instructions() {
        let p = tiny_program();
        let s = p.to_string();
        assert!(s.contains("movi a2, 1"));
        assert!(s.contains("halt"));
    }
}
