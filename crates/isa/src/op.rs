use std::fmt;

use crate::BaseClass;

/// Operand format of a base instruction, as written in assembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// `op rd, rs, rt`
    Rrr,
    /// `op rd, rs, imm`
    Rri,
    /// `op rd, rs, sa` — shift by immediate amount `0..32`.
    RriShift,
    /// `op rd, rs, sa, len` — extract unsigned field (`extui`).
    ExtractField,
    /// `op rd, rs`
    Rr,
    /// `op rd, imm`
    Ri,
    /// `op rd, imm(rs)` — load.
    Load,
    /// `op rd, label` — PC-relative literal load (`l32r`).
    LoadLit,
    /// `op rt, imm(rs)` — store (`rt` is the value source).
    Store,
    /// `op label` — jump or call to a label.
    Target,
    /// `op rs` — jump or call through a register.
    TargetReg,
    /// `op rs, rt, label` — two-register branch.
    BranchRr,
    /// `op rs, label` — compare-with-zero branch.
    BranchRz,
    /// `op rs, imm, label` — compare-with-immediate branch.
    BranchRi,
    /// no operands (`nop`, `ret`, `halt`).
    Bare,
}

/// Functional unit of the base datapath an instruction's EX stage occupies.
///
/// Used by the structural (RTL-level) energy model to assign op-dependent
/// switching energy; the macro-model deliberately does *not* distinguish
/// these within class A — that residual is one source of its fitting error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecUnit {
    /// Main adder (add/sub/compare/address generation).
    Adder,
    /// Bitwise logic unit.
    Logic,
    /// Barrel shifter.
    Shifter,
    /// 32-bit multiplier (2-cycle result latency).
    Multiplier,
    /// Register move / select network only.
    Move,
    /// No EX-stage datapath activity (control flow, `nop`).
    None,
}

macro_rules! opcodes {
    ($($variant:ident => ($mnem:literal, $fmt:ident, $class:ident, $unit:ident)),* $(,)?) => {
        /// A base-ISA opcode.
        ///
        /// The full list mirrors the size (~80 instructions) and flavour of
        /// the Xtensa base ISA: ALU/shift/multiply operations, sub-word
        /// loads/stores, jumps/calls, and a rich set of conditional
        /// branches including bit-mask forms.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[allow(missing_docs)] // the mnemonic table below documents each
        pub enum Opcode {
            $($variant),*
        }

        impl Opcode {
            /// Every base opcode, in canonical (encoding) order.
            pub const ALL: &'static [Opcode] = &[$(Opcode::$variant),*];

            /// Assembly mnemonic.
            pub fn mnemonic(self) -> &'static str {
                match self { $(Opcode::$variant => $mnem),* }
            }

            /// Operand format.
            pub fn format(self) -> Format {
                match self { $(Opcode::$variant => Format::$fmt),* }
            }

            /// Static instruction class (paper's clustering).
            pub fn base_class(self) -> BaseClass {
                match self { $(Opcode::$variant => BaseClass::$class),* }
            }

            /// EX-stage functional unit.
            pub fn exec_unit(self) -> ExecUnit {
                match self { $(Opcode::$variant => ExecUnit::$unit),* }
            }

            /// Looks an opcode up by its assembly mnemonic.
            pub fn from_mnemonic(mnemonic: &str) -> Option<Opcode> {
                match mnemonic { $($mnem => Some(Opcode::$variant),)* _ => None }
            }
        }
    };
}

opcodes! {
    // ---- arithmetic / logic (class A) ------------------------------------
    Add    => ("add",    Rrr,      Arithmetic, Adder),
    Sub    => ("sub",    Rrr,      Arithmetic, Adder),
    And    => ("and",    Rrr,      Arithmetic, Logic),
    Or     => ("or",     Rrr,      Arithmetic, Logic),
    Xor    => ("xor",    Rrr,      Arithmetic, Logic),
    Sll    => ("sll",    Rrr,      Arithmetic, Shifter),
    Srl    => ("srl",    Rrr,      Arithmetic, Shifter),
    Sra    => ("sra",    Rrr,      Arithmetic, Shifter),
    Ror    => ("ror",    Rrr,      Arithmetic, Shifter),
    Slt    => ("slt",    Rrr,      Arithmetic, Adder),
    Sltu   => ("sltu",   Rrr,      Arithmetic, Adder),
    Min    => ("min",    Rrr,      Arithmetic, Adder),
    Max    => ("max",    Rrr,      Arithmetic, Adder),
    Minu   => ("minu",   Rrr,      Arithmetic, Adder),
    Maxu   => ("maxu",   Rrr,      Arithmetic, Adder),
    Moveqz => ("moveqz", Rrr,      Arithmetic, Move),
    Movnez => ("movnez", Rrr,      Arithmetic, Move),
    Movltz => ("movltz", Rrr,      Arithmetic, Move),
    Movgez => ("movgez", Rrr,      Arithmetic, Move),
    Mul    => ("mul",    Rrr,      Arithmetic, Multiplier),
    Mulh   => ("mulh",   Rrr,      Arithmetic, Multiplier),
    Muluh  => ("muluh",  Rrr,      Arithmetic, Multiplier),
    Mul16s => ("mul16s", Rrr,      Arithmetic, Multiplier),
    Mul16u => ("mul16u", Rrr,      Arithmetic, Multiplier),
    Addi   => ("addi",   Rri,      Arithmetic, Adder),
    Addmi  => ("addmi",  Rri,      Arithmetic, Adder),
    Andi   => ("andi",   Rri,      Arithmetic, Logic),
    Ori    => ("ori",    Rri,      Arithmetic, Logic),
    Xori   => ("xori",   Rri,      Arithmetic, Logic),
    Slti   => ("slti",   Rri,      Arithmetic, Adder),
    Sltiu  => ("sltiu",  Rri,      Arithmetic, Adder),
    Slli   => ("slli",   RriShift, Arithmetic, Shifter),
    Srli   => ("srli",   RriShift, Arithmetic, Shifter),
    Srai   => ("srai",   RriShift, Arithmetic, Shifter),
    Rori   => ("rori",   RriShift, Arithmetic, Shifter),
    Extui  => ("extui",  ExtractField, Arithmetic, Shifter),
    Neg    => ("neg",    Rr,       Arithmetic, Adder),
    Abs    => ("abs",    Rr,       Arithmetic, Adder),
    Not    => ("not",    Rr,       Arithmetic, Logic),
    Mov    => ("mov",    Rr,       Arithmetic, Move),
    Sext8  => ("sext8",  Rr,       Arithmetic, Shifter),
    Sext16 => ("sext16", Rr,       Arithmetic, Shifter),
    Clz    => ("clz",    Rr,       Arithmetic, Logic),
    Movi   => ("movi",   Ri,       Arithmetic, Move),
    Nop    => ("nop",    Bare,     Arithmetic, None),
    // ---- loads (class L) --------------------------------------------------
    L8ui   => ("l8ui",   Load,     Load, Adder),
    L8si   => ("l8si",   Load,     Load, Adder),
    L16ui  => ("l16ui",  Load,     Load, Adder),
    L16si  => ("l16si",  Load,     Load, Adder),
    L32i   => ("l32i",   Load,     Load, Adder),
    L32r   => ("l32r",   LoadLit,  Load, Adder),
    // ---- stores (class S) -------------------------------------------------
    S8i    => ("s8i",    Store,    Store, Adder),
    S16i   => ("s16i",   Store,    Store, Adder),
    S32i   => ("s32i",   Store,    Store, Adder),
    // ---- jumps / calls (class J) -------------------------------------------
    J      => ("j",      Target,    Jump, None),
    Jx     => ("jx",     TargetReg, Jump, None),
    Call   => ("call",   Target,    Jump, Adder),
    Callx  => ("callx",  TargetReg, Jump, Adder),
    Ret    => ("ret",    Bare,      Jump, None),
    // ---- conditional branches (class B, split dynamically) -----------------
    Beq    => ("beq",    BranchRr, Branch, Adder),
    Bne    => ("bne",    BranchRr, Branch, Adder),
    Blt    => ("blt",    BranchRr, Branch, Adder),
    Bge    => ("bge",    BranchRr, Branch, Adder),
    Bltu   => ("bltu",   BranchRr, Branch, Adder),
    Bgeu   => ("bgeu",   BranchRr, Branch, Adder),
    Ball   => ("ball",   BranchRr, Branch, Logic),
    Bnall  => ("bnall",  BranchRr, Branch, Logic),
    Bany   => ("bany",   BranchRr, Branch, Logic),
    Bnone  => ("bnone",  BranchRr, Branch, Logic),
    Beqz   => ("beqz",   BranchRz, Branch, Adder),
    Bnez   => ("bnez",   BranchRz, Branch, Adder),
    Bltz   => ("bltz",   BranchRz, Branch, Adder),
    Bgez   => ("bgez",   BranchRz, Branch, Adder),
    Beqi   => ("beqi",   BranchRi, Branch, Adder),
    Bnei   => ("bnei",   BranchRi, Branch, Adder),
    Blti   => ("blti",   BranchRi, Branch, Adder),
    Bgei   => ("bgei",   BranchRi, Branch, Adder),
    Bltui  => ("bltui",  BranchRi, Branch, Adder),
    Bgeui  => ("bgeui",  BranchRi, Branch, Adder),
    // ---- system -------------------------------------------------------------
    Halt   => ("halt",   Bare,     Jump, None),
}

impl Opcode {
    /// Encoding index of the opcode (stable, `0..Opcode::ALL.len()`).
    pub fn index(self) -> usize {
        self as usize
    }

    /// `true` if this opcode is a conditional branch.
    pub fn is_branch(self) -> bool {
        self.base_class() == BaseClass::Branch
    }

    /// `true` if the EX stage uses the 2-cycle multiplier (result interlock
    /// applies to a dependent successor).
    pub fn is_multiply(self) -> bool {
        self.exec_unit() == ExecUnit::Multiplier
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn about_eighty_instructions() {
        // The paper: "The base ISA defines approximately 80 instructions."
        assert_eq!(Opcode::ALL.len(), 80);
    }

    #[test]
    fn mnemonics_are_unique_and_round_trip() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
        let mut names: Vec<_> = Opcode::ALL.iter().map(|o| o.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Opcode::ALL.len());
    }

    #[test]
    fn every_class_is_populated() {
        for class in BaseClass::ALL {
            assert!(
                Opcode::ALL.iter().any(|o| o.base_class() == class),
                "no opcode in class {class}"
            );
        }
    }

    #[test]
    fn class_counts_are_plausible() {
        let count = |c: BaseClass| Opcode::ALL.iter().filter(|o| o.base_class() == c).count();
        assert!(count(BaseClass::Arithmetic) >= 40);
        assert_eq!(count(BaseClass::Load), 6);
        assert_eq!(count(BaseClass::Store), 3);
        assert_eq!(count(BaseClass::Branch), 20);
    }

    #[test]
    fn multiply_detection() {
        assert!(Opcode::Mul.is_multiply());
        assert!(Opcode::Mul16u.is_multiply());
        assert!(!Opcode::Add.is_multiply());
    }

    #[test]
    fn branch_detection() {
        assert!(Opcode::Beq.is_branch());
        assert!(Opcode::Bnall.is_branch());
        assert!(!Opcode::J.is_branch());
    }

    #[test]
    fn indices_are_stable_and_dense() {
        for (i, &op) in Opcode::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
    }

    #[test]
    fn from_mnemonic_rejects_unknown() {
        assert_eq!(Opcode::from_mnemonic("frobnicate"), None);
        assert_eq!(Opcode::from_mnemonic(""), None);
        assert_eq!(Opcode::from_mnemonic("ADD"), None); // case-sensitive
    }
}
