use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// Number of architectural general-purpose registers.
pub const NUM_REGS: usize = 16;

/// An architectural general-purpose register, `a0` through `a15`.
///
/// Conventions used by the assembler-level ABI of this project:
///
/// * `a0` — link register (written by `call`/`callx`),
/// * `a1` — stack pointer,
/// * `a2..a7` — argument / result / caller-saved registers,
/// * `a8..a15` — temporaries.
///
/// # Example
///
/// ```
/// use emx_isa::Reg;
///
/// let r: Reg = "a7".parse().unwrap();
/// assert_eq!(r.index(), 7);
/// assert_eq!(r.to_string(), "a7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Reg(u8);

impl Reg {
    /// The link register `a0`.
    pub const LINK: Reg = Reg(0);
    /// The stack pointer `a1`.
    pub const SP: Reg = Reg(1);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`. Use [`Reg::try_new`] for fallible
    /// construction.
    pub fn new(index: u8) -> Self {
        Reg::try_new(index).expect("register index out of range")
    }

    /// Creates a register from its index, returning `None` if out of range.
    pub fn try_new(index: u8) -> Option<Self> {
        if (index as usize) < NUM_REGS {
            Some(Reg(index))
        } else {
            None
        }
    }

    /// The register index, `0..16`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over all architectural registers in order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_REGS as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Error returned when parsing a register name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    text: String,
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid register name `{}`", self.text)
    }
}

impl Error for ParseRegError {}

impl FromStr for Reg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseRegError { text: s.to_owned() };
        let num = s.strip_prefix('a').ok_or_else(err)?;
        // Reject forms like "a01" that would alias other names.
        if num.len() > 1 && num.starts_with('0') {
            return Err(err());
        }
        let index: u8 = num.parse().map_err(|_| err())?;
        Reg::try_new(index).ok_or_else(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_index() {
        assert_eq!(Reg::new(0).index(), 0);
        assert_eq!(Reg::new(15).index(), 15);
        assert_eq!(Reg::try_new(16), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_panics_out_of_range() {
        let _ = Reg::new(16);
    }

    #[test]
    fn display_round_trip() {
        for r in Reg::all() {
            let parsed: Reg = r.to_string().parse().unwrap();
            assert_eq!(parsed, r);
        }
    }

    #[test]
    fn parse_rejects_bad_names() {
        assert!("b1".parse::<Reg>().is_err());
        assert!("a16".parse::<Reg>().is_err());
        assert!("a".parse::<Reg>().is_err());
        assert!("a01".parse::<Reg>().is_err());
        assert!("a-1".parse::<Reg>().is_err());
    }

    #[test]
    fn conventions() {
        assert_eq!(Reg::LINK.index(), 0);
        assert_eq!(Reg::SP.index(), 1);
        assert_eq!(Reg::all().count(), NUM_REGS);
    }
}
