//! Two-pass assembler for the emx base ISA, with extension-mnemonic
//! support.
//!
//! The paper's flow cross-compiles C benchmarks with TIE intrinsics; our
//! workloads are written directly in assembly, so the assembler doubles as
//! the "software development environment generated alongside the enhanced
//! processor": registering an extension set's mnemonics (see
//! [`Assembler::register_custom`]) makes the new instructions first-class
//! in source text.
//!
//! # Syntax
//!
//! * one instruction or directive per line; `#`, `;` or `//` start comments,
//! * labels are `name:` at the start of a line (the rest of the line may
//!   hold an instruction),
//! * directives: `.text`, `.data`, `.word v, …`, `.byte v, …`, `.space n`,
//!   `.align n`,
//! * loads/stores use `offset(base)` memory operands,
//! * `movi rd, label` materializes a label's address,
//! * numbers are decimal or `0x…` hexadecimal, with optional `-`.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use emx_isa::asm::Assembler;
//!
//! let p = Assembler::new().assemble(
//!     r#"
//!     .data
//!     xs: .word 3, 1, 2
//!     .text
//!         movi a2, xs       # address of the array
//!         l32i a3, 4(a2)    # xs[1]
//!         halt
//!     "#,
//! )?;
//! assert_eq!(p.symbol("xs"), Some(p.data_base()));
//! # Ok(())
//! # }
//! ```

mod error;

pub use error::{AsmError, AsmErrorKind};

use std::collections::HashMap;

use crate::builder::BuildProgramError;
use crate::{BaseInst, CustomId, CustomSlot, Format, Opcode, Program, ProgramBuilder, Reg};

/// Operand signature of a custom instruction, as seen by the assembler.
///
/// Operand order in source text is: destination GPR (if `writes_gpr`),
/// then `gpr_reads` source GPRs, then an immediate (if `has_imm`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CustomSignature {
    /// Number of GPR source operands (0, 1 or 2).
    pub gpr_reads: u8,
    /// Whether the instruction writes a GPR destination.
    pub writes_gpr: bool,
    /// Whether the instruction takes an immediate operand.
    pub has_imm: bool,
}

impl CustomSignature {
    fn operand_count(self) -> usize {
        usize::from(self.writes_gpr) + usize::from(self.gpr_reads) + usize::from(self.has_imm)
    }
}

/// The assembler. Construct one, optionally register custom mnemonics,
/// then call [`Assembler::assemble`].
#[derive(Debug, Clone, Default)]
pub struct Assembler {
    custom: HashMap<String, (CustomId, CustomSignature)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

impl Assembler {
    /// Creates an assembler that knows only the base ISA.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a custom-instruction mnemonic.
    ///
    /// Re-registering a name replaces the previous binding; base-ISA
    /// mnemonics always take precedence during lookup.
    pub fn register_custom(
        &mut self,
        name: impl Into<String>,
        id: CustomId,
        signature: CustomSignature,
    ) -> &mut Self {
        self.custom.insert(name.into(), (id, signature));
        self
    }

    /// Assembles `source` into a [`Program`].
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] pinpointing the offending line for syntax
    /// errors, unknown mnemonics/labels, duplicate labels and out-of-range
    /// operands.
    pub fn assemble(&self, source: &str) -> Result<Program, AsmError> {
        // `.uncached` places the text segment in the uncached region; it
        // must appear before any label or instruction, so scan for it
        // up front.
        let mut builder = if source
            .lines()
            .map(|l| strip_comment(l).trim())
            .find(|l| !l.is_empty())
            == Some(".uncached")
        {
            ProgramBuilder::with_text_base(crate::program::layout::UNCACHED_BASE)
        } else {
            ProgramBuilder::new()
        };
        let mut section = Section::Text;
        let mut last_line = 0;

        for (line_index, raw_line) in source.lines().enumerate() {
            let line_no = line_index + 1;
            last_line = line_no;
            let mut line = strip_comment(raw_line).trim();

            // Peel leading labels (several are allowed: `a: b: inst`).
            while let Some(colon) = find_label_colon(line) {
                let (label, rest) = line.split_at(colon);
                let label = label.trim();
                if !is_identifier(label) {
                    return Err(AsmError::new(line_no, AsmErrorKind::BadLabel(label.into())));
                }
                let defined = match section {
                    Section::Text => builder.label(label),
                    Section::Data => builder.data_label(label),
                };
                if let Err(BuildProgramError::DuplicateLabel(l)) = defined {
                    return Err(AsmError::new(line_no, AsmErrorKind::DuplicateLabel(l)));
                }
                line = rest[1..].trim();
            }
            if line.is_empty() {
                continue;
            }

            if let Some(directive) = line.strip_prefix('.') {
                section = self.handle_directive(&mut builder, section, directive, line_no)?;
                continue;
            }

            self.handle_instruction(&mut builder, line, line_no)?;
        }

        builder.build().map_err(|e| match e {
            BuildProgramError::UnknownLabel(l) => {
                AsmError::new(last_line, AsmErrorKind::UnknownLabel(l))
            }
            BuildProgramError::DuplicateLabel(l) => {
                AsmError::new(last_line, AsmErrorKind::DuplicateLabel(l))
            }
        })
    }

    fn handle_directive(
        &self,
        builder: &mut ProgramBuilder,
        section: Section,
        directive: &str,
        line_no: usize,
    ) -> Result<Section, AsmError> {
        let (name, rest) = match directive.find(char::is_whitespace) {
            Some(i) => (&directive[..i], directive[i..].trim()),
            None => (directive, ""),
        };
        match name {
            "text" => Ok(Section::Text),
            "data" => Ok(Section::Data),
            // Handled during the pre-scan in `assemble`; accepted here so
            // the directive is not reported as unknown.
            "uncached" => Ok(section),
            "word" => {
                for item in split_operands(rest) {
                    let v = parse_number(&item).ok_or_else(|| {
                        AsmError::new(line_no, AsmErrorKind::BadNumber(item.clone()))
                    })?;
                    builder.word(v as u32);
                }
                Ok(section)
            }
            "byte" => {
                for item in split_operands(rest) {
                    let v = parse_number(&item).ok_or_else(|| {
                        AsmError::new(line_no, AsmErrorKind::BadNumber(item.clone()))
                    })?;
                    if !(-128..=255).contains(&v) {
                        return Err(AsmError::new(
                            line_no,
                            AsmErrorKind::OutOfRange("byte".into()),
                        ));
                    }
                    builder.bytes(&[v as u8]);
                }
                Ok(section)
            }
            "space" => {
                let v = parse_number(rest)
                    .filter(|&v| v >= 0)
                    .ok_or_else(|| AsmError::new(line_no, AsmErrorKind::BadNumber(rest.into())))?;
                builder.space(v as usize);
                Ok(section)
            }
            "align" => {
                let v = parse_number(rest)
                    .filter(|&v| v > 0 && (v as u64).is_power_of_two())
                    .ok_or_else(|| AsmError::new(line_no, AsmErrorKind::BadNumber(rest.into())))?;
                builder.align(v as usize);
                Ok(section)
            }
            other => Err(AsmError::new(
                line_no,
                AsmErrorKind::UnknownDirective(other.into()),
            )),
        }
    }

    fn handle_instruction(
        &self,
        builder: &mut ProgramBuilder,
        line: &str,
        line_no: usize,
    ) -> Result<(), AsmError> {
        let (mnemonic, rest) = match line.find(char::is_whitespace) {
            Some(i) => (&line[..i], line[i..].trim()),
            None => (line, ""),
        };
        let operands = split_operands(rest);

        if let Some(op) = Opcode::from_mnemonic(mnemonic) {
            return self.base_instruction(builder, op, &operands, line_no);
        }
        if let Some(&(id, signature)) = self.custom.get(mnemonic) {
            return self.custom_instruction(builder, id, signature, &operands, line_no);
        }
        Err(AsmError::new(
            line_no,
            AsmErrorKind::UnknownMnemonic(mnemonic.into()),
        ))
    }

    fn base_instruction(
        &self,
        builder: &mut ProgramBuilder,
        op: Opcode,
        operands: &[String],
        line_no: usize,
    ) -> Result<(), AsmError> {
        let want = |n: usize| -> Result<(), AsmError> {
            if operands.len() != n {
                Err(AsmError::new(
                    line_no,
                    AsmErrorKind::OperandCount {
                        expected: n,
                        got: operands.len(),
                    },
                ))
            } else {
                Ok(())
            }
        };
        let reg = |s: &str| -> Result<Reg, AsmError> {
            s.parse()
                .map_err(|_| AsmError::new(line_no, AsmErrorKind::BadOperand(s.into())))
        };
        let num = |s: &str| -> Result<i32, AsmError> {
            parse_number(s)
                .and_then(|v| i32::try_from(v).ok())
                .ok_or_else(|| AsmError::new(line_no, AsmErrorKind::BadNumber(s.into())))
        };

        match op.format() {
            Format::Rrr => {
                want(3)?;
                builder.inst(BaseInst::rrr(
                    op,
                    reg(&operands[0])?,
                    reg(&operands[1])?,
                    reg(&operands[2])?,
                ));
            }
            Format::Rri => {
                want(3)?;
                builder.inst(BaseInst::rri(
                    op,
                    reg(&operands[0])?,
                    reg(&operands[1])?,
                    num(&operands[2])?,
                ));
            }
            Format::RriShift => {
                want(3)?;
                let sa = num(&operands[2])?;
                if !(0..32).contains(&sa) {
                    return Err(AsmError::new(
                        line_no,
                        AsmErrorKind::OutOfRange("shift amount".into()),
                    ));
                }
                builder.inst(BaseInst::rri(
                    op,
                    reg(&operands[0])?,
                    reg(&operands[1])?,
                    sa,
                ));
            }
            Format::ExtractField => {
                want(4)?;
                let sa = num(&operands[2])?;
                let len = num(&operands[3])?;
                if !(0..32).contains(&sa) || !(1..=32).contains(&len) {
                    return Err(AsmError::new(
                        line_no,
                        AsmErrorKind::OutOfRange("extract field".into()),
                    ));
                }
                builder.inst(BaseInst::extui(
                    reg(&operands[0])?,
                    reg(&operands[1])?,
                    sa as u8,
                    len as u8,
                ));
            }
            Format::Rr => {
                want(2)?;
                builder.inst(BaseInst::rr(op, reg(&operands[0])?, reg(&operands[1])?));
            }
            Format::Ri => {
                want(2)?;
                let rd = reg(&operands[0])?;
                // `movi rd, label` materializes the label's address.
                if let Some(v) = parse_number(&operands[1]) {
                    let imm = i64::from(i32::MIN)..=i64::from(u32::MAX);
                    if !imm.contains(&v) {
                        return Err(AsmError::new(
                            line_no,
                            AsmErrorKind::OutOfRange("immediate".into()),
                        ));
                    }
                    builder.inst(BaseInst::movi(rd, v as u32 as i32));
                } else if is_identifier(&operands[1]) {
                    builder.load_address(rd, &operands[1]);
                } else {
                    return Err(AsmError::new(
                        line_no,
                        AsmErrorKind::BadOperand(operands[1].clone()),
                    ));
                }
            }
            Format::Load => {
                want(2)?;
                let (offset, base) = parse_mem(&operands[1]).ok_or_else(|| {
                    AsmError::new(line_no, AsmErrorKind::BadOperand(operands[1].clone()))
                })?;
                builder.inst(BaseInst::load(op, reg(&operands[0])?, offset, reg(&base)?));
            }
            Format::LoadLit => {
                want(2)?;
                if !is_identifier(&operands[1]) {
                    return Err(AsmError::new(
                        line_no,
                        AsmErrorKind::BadOperand(operands[1].clone()),
                    ));
                }
                builder.l32r_label(reg(&operands[0])?, &operands[1]);
            }
            Format::Store => {
                want(2)?;
                let (offset, base) = parse_mem(&operands[1]).ok_or_else(|| {
                    AsmError::new(line_no, AsmErrorKind::BadOperand(operands[1].clone()))
                })?;
                builder.inst(BaseInst::store(op, reg(&operands[0])?, offset, reg(&base)?));
            }
            Format::Target => {
                want(1)?;
                if let Some(v) = parse_number(&operands[0]) {
                    builder.inst(BaseInst::jump(op, v as u32));
                } else if is_identifier(&operands[0]) {
                    builder.jump_to(op, &operands[0]);
                } else {
                    return Err(AsmError::new(
                        line_no,
                        AsmErrorKind::BadOperand(operands[0].clone()),
                    ));
                }
            }
            Format::TargetReg => {
                want(1)?;
                builder.inst(BaseInst::jump_reg(op, reg(&operands[0])?));
            }
            Format::BranchRr => {
                want(3)?;
                builder.branch_rr_to(
                    op,
                    reg(&operands[0])?,
                    reg(&operands[1])?,
                    &label_operand(&operands[2], line_no)?,
                );
            }
            Format::BranchRz => {
                want(2)?;
                builder.branch_rz_to(
                    op,
                    reg(&operands[0])?,
                    &label_operand(&operands[1], line_no)?,
                );
            }
            Format::BranchRi => {
                want(3)?;
                builder.branch_ri_to(
                    op,
                    reg(&operands[0])?,
                    num(&operands[1])?,
                    &label_operand(&operands[2], line_no)?,
                );
            }
            Format::Bare => {
                want(0)?;
                builder.inst(BaseInst::bare(op));
            }
        }
        Ok(())
    }

    fn custom_instruction(
        &self,
        builder: &mut ProgramBuilder,
        id: CustomId,
        signature: CustomSignature,
        operands: &[String],
        line_no: usize,
    ) -> Result<(), AsmError> {
        if operands.len() != signature.operand_count() {
            return Err(AsmError::new(
                line_no,
                AsmErrorKind::OperandCount {
                    expected: signature.operand_count(),
                    got: operands.len(),
                },
            ));
        }
        let reg = |s: &str| -> Result<Reg, AsmError> {
            s.parse()
                .map_err(|_| AsmError::new(line_no, AsmErrorKind::BadOperand(s.into())))
        };
        let mut it = operands.iter();
        let rd = if signature.writes_gpr {
            reg(it.next().expect("count checked"))?
        } else {
            Reg::default()
        };
        let rs = if signature.gpr_reads >= 1 {
            reg(it.next().expect("count checked"))?
        } else {
            Reg::default()
        };
        let rt = if signature.gpr_reads >= 2 {
            reg(it.next().expect("count checked"))?
        } else {
            Reg::default()
        };
        let imm = if signature.has_imm {
            let s = it.next().expect("count checked");
            parse_number(s)
                .and_then(|v| i32::try_from(v).ok())
                .ok_or_else(|| AsmError::new(line_no, AsmErrorKind::BadNumber(s.clone())))?
        } else {
            0
        };
        builder.inst(CustomSlot {
            id,
            rd,
            rs,
            rt,
            imm,
        });
        Ok(())
    }
}

fn label_operand(s: &str, line_no: usize) -> Result<String, AsmError> {
    if is_identifier(s) {
        Ok(s.to_owned())
    } else {
        Err(AsmError::new(line_no, AsmErrorKind::BadOperand(s.into())))
    }
}

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for (i, _) in line.match_indices(['#', ';']) {
        end = end.min(i);
    }
    if let Some(i) = line.find("//") {
        end = end.min(i);
    }
    &line[..end]
}

fn find_label_colon(line: &str) -> Option<usize> {
    // A label colon must come before any whitespace-delimited operand
    // content; `beq a1, a2, x` contains no colon so this is unambiguous.
    let colon = line.find(':')?;
    let head = &line[..colon];
    if !head.is_empty()
        && head
            .chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '.')
    {
        Some(colon)
    } else {
        None
    }
}

fn is_identifier(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_alphabetic() || c == '_' || c == '.' => {}
        _ => return false,
    }
    chars.all(|c| c.is_alphanumeric() || c == '_' || c == '.')
}

fn split_operands(s: &str) -> Vec<String> {
    if s.trim().is_empty() {
        return Vec::new();
    }
    s.split(',').map(|p| p.trim().to_owned()).collect()
}

fn parse_number(s: &str) -> Option<i64> {
    let s = s.trim();
    let (negative, s) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let value = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else if let Some(bin) = s.strip_prefix("0b").or_else(|| s.strip_prefix("0B")) {
        i64::from_str_radix(bin, 2).ok()?
    } else if s.chars().all(|c| c.is_ascii_digit()) && !s.is_empty() {
        s.parse().ok()?
    } else {
        return None;
    };
    Some(if negative { -value } else { value })
}

/// Parses a memory operand `offset(base)`, e.g. `8(a1)` or `-4(a2)`.
fn parse_mem(s: &str) -> Option<(i32, String)> {
    let open = s.find('(')?;
    let close = s.strip_suffix(')')?;
    let offset_text = s[..open].trim();
    let offset = if offset_text.is_empty() {
        0
    } else {
        i32::try_from(parse_number(offset_text)?).ok()?
    };
    let base = close[open + 1..].trim().to_owned();
    Some((offset, base))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Inst;

    fn assemble(src: &str) -> Program {
        Assembler::new().assemble(src).unwrap()
    }

    #[test]
    fn simple_program() {
        let p = assemble("movi a2, 5\naddi a2, a2, 1\nhalt\n");
        assert_eq!(p.len(), 3);
        assert_eq!(p.text()[2], Inst::Base(BaseInst::bare(Opcode::Halt)));
    }

    #[test]
    fn comments_and_blank_lines() {
        let p = assemble("# full comment\n\nmovi a2, 1 ; trailing\nhalt // other style\n");
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn labels_and_branches() {
        let p = assemble("movi a2, 3\nloop: addi a2, a2, -1\nbnez a2, loop\nhalt\n");
        match &p.text()[2] {
            Inst::Base(b) => {
                assert_eq!(b.op, Opcode::Bnez);
                assert_eq!(b.target, 4);
            }
            _ => panic!(),
        }
        assert_eq!(p.symbol("loop"), Some(4));
    }

    #[test]
    fn memory_operands() {
        let p = assemble("l32i a3, 8(a1)\ns16i a3, -2(a4)\nl8ui a5, (a6)\nhalt\n");
        match &p.text()[0] {
            Inst::Base(b) => assert_eq!((b.imm, b.rs.index()), (8, 1)),
            _ => panic!(),
        }
        match &p.text()[1] {
            Inst::Base(b) => assert_eq!((b.imm, b.rt.index(), b.rs.index()), (-2, 3, 4)),
            _ => panic!(),
        }
        match &p.text()[2] {
            Inst::Base(b) => assert_eq!(b.imm, 0),
            _ => panic!(),
        }
    }

    #[test]
    fn data_directives_and_l32r() {
        let p = assemble(
            ".data\nk: .word 0x12345678\nbuf: .space 8\nb: .byte 1, 2, 255\n.align 4\n.text\nl32r a2, k\nmovi a3, buf\nhalt\n",
        );
        assert_eq!(p.symbol("k"), Some(p.data_base()));
        assert_eq!(p.symbol("buf"), Some(p.data_base() + 4));
        assert_eq!(&p.data()[0..4], &0x12345678u32.to_le_bytes());
        assert_eq!(p.data()[12], 1);
        match &p.text()[0] {
            Inst::Base(b) => assert_eq!(b.target, p.data_base()),
            _ => panic!(),
        }
        match &p.text()[1] {
            Inst::Base(b) => assert_eq!(b.imm as u32, p.data_base() + 4),
            _ => panic!(),
        }
    }

    #[test]
    fn custom_mnemonics() {
        let mut asm = Assembler::new();
        asm.register_custom(
            "gfmul",
            CustomId(0),
            CustomSignature {
                gpr_reads: 2,
                writes_gpr: true,
                has_imm: false,
            },
        );
        let p = asm.assemble("gfmul a2, a3, a4\nhalt\n").unwrap();
        match &p.text()[0] {
            Inst::Custom(c) => {
                assert_eq!(c.id, CustomId(0));
                assert_eq!((c.rd.index(), c.rs.index(), c.rt.index()), (2, 3, 4));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn error_reporting() {
        let err = Assembler::new()
            .assemble("movi a2, 1\nbogus a1\n")
            .unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, AsmErrorKind::UnknownMnemonic(_)));

        let err = Assembler::new().assemble("add a1, a2\n").unwrap_err();
        assert!(matches!(
            err.kind,
            AsmErrorKind::OperandCount {
                expected: 3,
                got: 2
            }
        ));

        let err = Assembler::new().assemble("movi a99, 1\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::BadOperand(_)));

        let err = Assembler::new().assemble("j nowhere\nhalt\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::UnknownLabel(_)));

        let err = Assembler::new().assemble("x: nop\nx: halt\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::DuplicateLabel(_)));

        let err = Assembler::new().assemble(".bogus 3\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::UnknownDirective(_)));

        let err = Assembler::new().assemble("slli a2, a3, 32\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::OutOfRange(_)));
    }

    #[test]
    fn number_forms() {
        assert_eq!(parse_number("42"), Some(42));
        assert_eq!(parse_number("-7"), Some(-7));
        assert_eq!(parse_number("0x10"), Some(16));
        assert_eq!(parse_number("0b101"), Some(5));
        assert_eq!(parse_number("-0b10"), Some(-2));
        assert_eq!(parse_number("-0x10"), Some(-16));
        assert_eq!(parse_number("a1"), None);
        assert_eq!(parse_number(""), None);
        assert_eq!(parse_number("12x"), None);
    }

    #[test]
    fn multiple_labels_one_line() {
        let p = assemble("a: b: nop\nhalt\n");
        assert_eq!(p.symbol("a"), Some(0));
        assert_eq!(p.symbol("b"), Some(0));
    }

    #[test]
    fn jump_to_numeric_address() {
        let p = assemble("j 0x8\nnop\nhalt\n");
        match &p.text()[0] {
            Inst::Base(b) => assert_eq!(b.target, 8),
            _ => panic!(),
        }
    }

    #[test]
    fn uncached_directive_moves_text() {
        use crate::program::layout;
        let p = assemble(".uncached\nstart: nop\nhalt\n");
        assert_eq!(p.text_base(), layout::UNCACHED_BASE);
        assert_eq!(p.symbol("start"), Some(layout::UNCACHED_BASE));
        assert_eq!(p.entry(), layout::UNCACHED_BASE);
    }

    #[test]
    fn extui_parses() {
        let p = assemble("extui a2, a3, 4, 8\nhalt\n");
        match &p.text()[0] {
            Inst::Base(b) => assert_eq!((b.imm, b.len), (4, 8)),
            _ => panic!(),
        }
    }
}
