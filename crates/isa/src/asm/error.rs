use std::error::Error;
use std::fmt;

/// Error produced while assembling a source text.
///
/// Carries the 1-based source line number and a specific [`AsmErrorKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// What went wrong.
    pub kind: AsmErrorKind,
}

impl AsmError {
    pub(crate) fn new(line: usize, kind: AsmErrorKind) -> Self {
        AsmError { line, kind }
    }
}

/// The specific failure behind an [`AsmError`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsmErrorKind {
    /// The mnemonic is neither a base opcode nor a registered custom
    /// instruction.
    UnknownMnemonic(String),
    /// An unrecognized `.directive`.
    UnknownDirective(String),
    /// Wrong number of operands for the instruction's format.
    OperandCount {
        /// Operands expected by the format.
        expected: usize,
        /// Operands found on the line.
        got: usize,
    },
    /// An operand failed to parse (register, number or memory operand).
    BadOperand(String),
    /// A numeric literal failed to parse or was out of range.
    BadNumber(String),
    /// A shift amount or bit-field length was out of range.
    OutOfRange(String),
    /// A label was defined more than once.
    DuplicateLabel(String),
    /// A referenced label was never defined.
    UnknownLabel(String),
    /// A label name is not a valid identifier.
    BadLabel(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic `{m}`"),
            AsmErrorKind::UnknownDirective(d) => write!(f, "unknown directive `{d}`"),
            AsmErrorKind::OperandCount { expected, got } => {
                write!(f, "expected {expected} operands, found {got}")
            }
            AsmErrorKind::BadOperand(o) => write!(f, "bad operand `{o}`"),
            AsmErrorKind::BadNumber(n) => write!(f, "bad number `{n}`"),
            AsmErrorKind::OutOfRange(what) => write!(f, "{what} out of range"),
            AsmErrorKind::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmErrorKind::UnknownLabel(l) => write!(f, "unknown label `{l}`"),
            AsmErrorKind::BadLabel(l) => write!(f, "bad label `{l}`"),
        }
    }
}

impl Error for AsmError {}
