use std::fmt;

/// Static instruction class of a base-ISA opcode.
///
/// The paper clusters the base ISA into six *dynamic* classes (arithmetic,
/// load, store, jump, branch-taken, branch-untaken) following Tiwari et
/// al.'s observation that per-class energy characterization is accurate.
/// Statically, taken and untaken branches are the same instructions, so the
/// static classification has five entries; the simulator refines `Branch`
/// into [`DynClass::BranchTaken`] / [`DynClass::BranchUntaken`] per dynamic
/// instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BaseClass {
    /// Arithmetic, logic, shift, move, compare and multiply instructions.
    Arithmetic,
    /// Memory loads.
    Load,
    /// Memory stores.
    Store,
    /// Unconditional jumps, calls and returns.
    Jump,
    /// Conditional branches (dynamically taken or untaken).
    Branch,
}

impl BaseClass {
    /// All static classes, in canonical order.
    pub const ALL: [BaseClass; 5] = [
        BaseClass::Arithmetic,
        BaseClass::Load,
        BaseClass::Store,
        BaseClass::Jump,
        BaseClass::Branch,
    ];
}

impl fmt::Display for BaseClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BaseClass::Arithmetic => "arithmetic",
            BaseClass::Load => "load",
            BaseClass::Store => "store",
            BaseClass::Jump => "jump",
            BaseClass::Branch => "branch",
        };
        f.write_str(s)
    }
}

/// Dynamic instruction class — the paper's six base-ISA clusters.
///
/// These are the subscripts of the instruction-level macro-model variables
/// `n_A, n_L, n_S, n_J, n_Bt, n_Bu` in Eq. (3) of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DynClass {
    /// Arithmetic / logic / shift / move / compare / multiply.
    Arithmetic,
    /// Load.
    Load,
    /// Store.
    Store,
    /// Jump / call / return.
    Jump,
    /// Conditional branch that was taken.
    BranchTaken,
    /// Conditional branch that fell through.
    BranchUntaken,
}

impl DynClass {
    /// All dynamic classes, in the order used by the macro-model template.
    pub const ALL: [DynClass; 6] = [
        DynClass::Arithmetic,
        DynClass::Load,
        DynClass::Store,
        DynClass::Jump,
        DynClass::BranchTaken,
        DynClass::BranchUntaken,
    ];

    /// Index of the class inside [`DynClass::ALL`].
    pub fn index(self) -> usize {
        match self {
            DynClass::Arithmetic => 0,
            DynClass::Load => 1,
            DynClass::Store => 2,
            DynClass::Jump => 3,
            DynClass::BranchTaken => 4,
            DynClass::BranchUntaken => 5,
        }
    }

    /// Refines a static class with a dynamic branch outcome.
    ///
    /// `taken` is ignored for non-branch classes.
    ///
    /// # Example
    ///
    /// ```
    /// use emx_isa::{BaseClass, DynClass};
    ///
    /// assert_eq!(DynClass::from_base(BaseClass::Branch, true), DynClass::BranchTaken);
    /// assert_eq!(DynClass::from_base(BaseClass::Load, true), DynClass::Load);
    /// ```
    pub fn from_base(class: BaseClass, taken: bool) -> DynClass {
        match class {
            BaseClass::Arithmetic => DynClass::Arithmetic,
            BaseClass::Load => DynClass::Load,
            BaseClass::Store => DynClass::Store,
            BaseClass::Jump => DynClass::Jump,
            BaseClass::Branch => {
                if taken {
                    DynClass::BranchTaken
                } else {
                    DynClass::BranchUntaken
                }
            }
        }
    }

    /// Short name used as a macro-model variable suffix (`A`, `L`, `S`,
    /// `J`, `Bt`, `Bu`).
    pub fn short_name(self) -> &'static str {
        match self {
            DynClass::Arithmetic => "A",
            DynClass::Load => "L",
            DynClass::Store => "S",
            DynClass::Jump => "J",
            DynClass::BranchTaken => "Bt",
            DynClass::BranchUntaken => "Bu",
        }
    }
}

impl fmt::Display for DynClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DynClass::Arithmetic => "arithmetic",
            DynClass::Load => "load",
            DynClass::Store => "store",
            DynClass::Jump => "jump",
            DynClass::BranchTaken => "branch-taken",
            DynClass::BranchUntaken => "branch-untaken",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dyn_class_indices_are_canonical() {
        for (i, c) in DynClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn from_base_covers_all() {
        assert_eq!(
            DynClass::from_base(BaseClass::Arithmetic, false),
            DynClass::Arithmetic
        );
        assert_eq!(DynClass::from_base(BaseClass::Jump, false), DynClass::Jump);
        assert_eq!(
            DynClass::from_base(BaseClass::Branch, false),
            DynClass::BranchUntaken
        );
        assert_eq!(DynClass::from_base(BaseClass::Store, true), DynClass::Store);
    }

    #[test]
    fn short_names_unique() {
        let mut names: Vec<_> = DynClass::ALL.iter().map(|c| c.short_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }
}
