use std::fmt;

use crate::{Format, Opcode, Reg};

/// Identifier of a custom (TIE-like) instruction within an extension set.
///
/// The base ISA crate carries custom instructions opaquely; their dataflow
/// semantics, latency and hardware resources are defined by the `emx-tie`
/// crate, which owns the mapping from `CustomId` to a specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CustomId(pub u16);

impl fmt::Display for CustomId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tie#{}", self.0)
    }
}

/// A decoded base-ISA instruction.
///
/// All operand fields are always present; which ones are meaningful is
/// determined by `op.format()`. Unused fields are left at their `Default`
/// values by the constructors below, which keeps the decoder and the
/// executors simple and branch-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BaseInst {
    /// The opcode.
    pub op: Opcode,
    /// Destination register (also the loaded register for loads).
    pub rd: Reg,
    /// First source register (base address for loads/stores).
    pub rs: Reg,
    /// Second source register (store-value source for stores).
    pub rt: Reg,
    /// Immediate operand: arithmetic immediate, shift amount, load/store
    /// offset, or branch comparison immediate, depending on the format.
    pub imm: i32,
    /// Field length for `extui` (1..=32); 0 otherwise.
    pub len: u8,
    /// Resolved absolute target address for jumps, calls, branches and
    /// `l32r` literals; 0 otherwise.
    pub target: u32,
}

// Not derivable: `Nop` is mid-table (encoding order is frozen), and
// `#[default]` cannot be attached inside the opcode macro expansion.
#[allow(clippy::derivable_impls)]
impl Default for Opcode {
    fn default() -> Self {
        Opcode::Nop
    }
}

impl BaseInst {
    /// `op rd, rs, rt` (three-register format).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `op` is not [`Format::Rrr`].
    pub fn rrr(op: Opcode, rd: Reg, rs: Reg, rt: Reg) -> Self {
        debug_assert_eq!(op.format(), Format::Rrr, "{op} is not an rrr opcode");
        BaseInst {
            op,
            rd,
            rs,
            rt,
            ..Default::default()
        }
    }

    /// `op rd, rs, imm` (register-immediate, including shift-immediate).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `op` is not [`Format::Rri`] or
    /// [`Format::RriShift`].
    pub fn rri(op: Opcode, rd: Reg, rs: Reg, imm: i32) -> Self {
        debug_assert!(
            matches!(op.format(), Format::Rri | Format::RriShift),
            "{op} is not an rri opcode"
        );
        BaseInst {
            op,
            rd,
            rs,
            imm,
            ..Default::default()
        }
    }

    /// `extui rd, rs, sa, len`.
    pub fn extui(rd: Reg, rs: Reg, sa: u8, len: u8) -> Self {
        BaseInst {
            op: Opcode::Extui,
            rd,
            rs,
            imm: i32::from(sa),
            len,
            ..Default::default()
        }
    }

    /// `op rd, rs` (two-register format).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `op` is not [`Format::Rr`].
    pub fn rr(op: Opcode, rd: Reg, rs: Reg) -> Self {
        debug_assert_eq!(op.format(), Format::Rr, "{op} is not an rr opcode");
        BaseInst {
            op,
            rd,
            rs,
            ..Default::default()
        }
    }

    /// `movi rd, imm`.
    pub fn movi(rd: Reg, imm: i32) -> Self {
        BaseInst {
            op: Opcode::Movi,
            rd,
            imm,
            ..Default::default()
        }
    }

    /// `op rd, imm(rs)` — load.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `op` is not [`Format::Load`].
    pub fn load(op: Opcode, rd: Reg, offset: i32, rs: Reg) -> Self {
        debug_assert_eq!(op.format(), Format::Load, "{op} is not a load opcode");
        BaseInst {
            op,
            rd,
            rs,
            imm: offset,
            ..Default::default()
        }
    }

    /// `l32r rd, <literal at absolute address>`.
    pub fn l32r(rd: Reg, address: u32) -> Self {
        BaseInst {
            op: Opcode::L32r,
            rd,
            target: address,
            ..Default::default()
        }
    }

    /// `op rt, imm(rs)` — store.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `op` is not [`Format::Store`].
    pub fn store(op: Opcode, rt: Reg, offset: i32, rs: Reg) -> Self {
        debug_assert_eq!(op.format(), Format::Store, "{op} is not a store opcode");
        BaseInst {
            op,
            rs,
            rt,
            imm: offset,
            ..Default::default()
        }
    }

    /// `j <address>` or `call <address>`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `op` is not [`Format::Target`].
    pub fn jump(op: Opcode, target: u32) -> Self {
        debug_assert_eq!(op.format(), Format::Target, "{op} is not a target opcode");
        BaseInst {
            op,
            target,
            ..Default::default()
        }
    }

    /// `jx rs` or `callx rs`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `op` is not [`Format::TargetReg`].
    pub fn jump_reg(op: Opcode, rs: Reg) -> Self {
        debug_assert_eq!(
            op.format(),
            Format::TargetReg,
            "{op} is not a register-target opcode"
        );
        BaseInst {
            op,
            rs,
            ..Default::default()
        }
    }

    /// Two-register branch `op rs, rt, <address>`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `op` is not [`Format::BranchRr`].
    pub fn branch_rr(op: Opcode, rs: Reg, rt: Reg, target: u32) -> Self {
        debug_assert_eq!(op.format(), Format::BranchRr, "{op} is not an rr-branch");
        BaseInst {
            op,
            rs,
            rt,
            target,
            ..Default::default()
        }
    }

    /// Compare-with-zero branch `op rs, <address>`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `op` is not [`Format::BranchRz`].
    pub fn branch_rz(op: Opcode, rs: Reg, target: u32) -> Self {
        debug_assert_eq!(op.format(), Format::BranchRz, "{op} is not a z-branch");
        BaseInst {
            op,
            rs,
            target,
            ..Default::default()
        }
    }

    /// Compare-with-immediate branch `op rs, imm, <address>`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `op` is not [`Format::BranchRi`].
    pub fn branch_ri(op: Opcode, rs: Reg, imm: i32, target: u32) -> Self {
        debug_assert_eq!(op.format(), Format::BranchRi, "{op} is not an imm-branch");
        BaseInst {
            op,
            rs,
            imm,
            target,
            ..Default::default()
        }
    }

    /// A bare instruction (`nop`, `ret`, `halt`).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `op` is not [`Format::Bare`].
    pub fn bare(op: Opcode) -> Self {
        debug_assert_eq!(op.format(), Format::Bare, "{op} takes operands");
        BaseInst {
            op,
            ..Default::default()
        }
    }

    /// Registers read by this instruction, without allocating (the
    /// simulator's hazard-detection hot path).
    pub fn read_regs(&self) -> (Option<Reg>, Option<Reg>) {
        match self.op.format() {
            Format::Rrr | Format::Store | Format::BranchRr => (Some(self.rs), Some(self.rt)),
            Format::Rri
            | Format::RriShift
            | Format::ExtractField
            | Format::Rr
            | Format::Load
            | Format::TargetReg
            | Format::BranchRz
            | Format::BranchRi => (Some(self.rs), None),
            Format::Bare if self.op == Opcode::Ret => (Some(Reg::LINK), None),
            Format::Ri | Format::LoadLit | Format::Target | Format::Bare => (None, None),
        }
    }

    /// Registers read by this instruction, in operand order.
    pub fn reads(&self) -> Vec<Reg> {
        match self.op.format() {
            Format::Rrr => vec![self.rs, self.rt],
            Format::Rri | Format::RriShift | Format::ExtractField | Format::Rr => vec![self.rs],
            Format::Ri | Format::LoadLit | Format::Target | Format::Bare => vec![],
            Format::Load => vec![self.rs],
            Format::Store => vec![self.rs, self.rt],
            Format::TargetReg => vec![self.rs],
            Format::BranchRr => vec![self.rs, self.rt],
            Format::BranchRz | Format::BranchRi => vec![self.rs],
        }
    }

    /// Register written by this instruction, if any.
    pub fn writes(&self) -> Option<Reg> {
        match self.op.format() {
            Format::Rrr
            | Format::Rri
            | Format::RriShift
            | Format::ExtractField
            | Format::Rr
            | Format::Ri
            | Format::Load
            | Format::LoadLit => Some(self.rd),
            // Calls write the link register.
            Format::Target | Format::TargetReg
                if matches!(self.op, Opcode::Call | Opcode::Callx) =>
            {
                Some(Reg::LINK)
            }
            _ => None,
        }
    }
}

impl fmt::Display for BaseInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.op.mnemonic();
        match self.op.format() {
            Format::Rrr => write!(f, "{m} {}, {}, {}", self.rd, self.rs, self.rt),
            Format::Rri | Format::RriShift => {
                write!(f, "{m} {}, {}, {}", self.rd, self.rs, self.imm)
            }
            Format::ExtractField => {
                write!(
                    f,
                    "{m} {}, {}, {}, {}",
                    self.rd, self.rs, self.imm, self.len
                )
            }
            Format::Rr => write!(f, "{m} {}, {}", self.rd, self.rs),
            Format::Ri => write!(f, "{m} {}, {}", self.rd, self.imm),
            Format::Load => write!(f, "{m} {}, {}({})", self.rd, self.imm, self.rs),
            Format::LoadLit => write!(f, "{m} {}, 0x{:x}", self.rd, self.target),
            Format::Store => write!(f, "{m} {}, {}({})", self.rt, self.imm, self.rs),
            Format::Target => write!(f, "{m} 0x{:x}", self.target),
            Format::TargetReg => write!(f, "{m} {}", self.rs),
            Format::BranchRr => {
                write!(f, "{m} {}, {}, 0x{:x}", self.rs, self.rt, self.target)
            }
            Format::BranchRz => write!(f, "{m} {}, 0x{:x}", self.rs, self.target),
            Format::BranchRi => {
                write!(f, "{m} {}, {}, 0x{:x}", self.rs, self.imm, self.target)
            }
            Format::Bare => f.write_str(m),
        }
    }
}

/// An instance of a custom instruction in a program.
///
/// The slot carries only the encoding-level operands; the `emx-tie` crate
/// resolves `id` into a full specification (dataflow graph, latency,
/// custom-register operands, hardware resources).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CustomSlot {
    /// Which custom instruction this is.
    pub id: CustomId,
    /// GPR destination (meaningful if the spec writes a GPR).
    pub rd: Reg,
    /// First GPR source (meaningful if the spec reads ≥ 1 GPR).
    pub rs: Reg,
    /// Second GPR source (meaningful if the spec reads 2 GPRs).
    pub rt: Reg,
    /// Immediate operand (meaningful if the spec takes one).
    pub imm: i32,
}

impl fmt::Display for CustomSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}, {}, {}, {}",
            self.id, self.rd, self.rs, self.rt, self.imm
        )
    }
}

/// A decoded instruction: either a base-ISA instruction or a custom
/// (TIE-like) extension instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// Base-ISA instruction.
    Base(BaseInst),
    /// Custom-extension instruction.
    Custom(CustomSlot),
}

impl Inst {
    /// `true` for `halt`.
    pub fn is_halt(&self) -> bool {
        matches!(self, Inst::Base(b) if b.op == Opcode::Halt)
    }
}

impl From<BaseInst> for Inst {
    fn from(b: BaseInst) -> Self {
        Inst::Base(b)
    }
}

impl From<CustomSlot> for Inst {
    fn from(c: CustomSlot) -> Self {
        Inst::Custom(c)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Base(b) => b.fmt(f),
            Inst::Custom(c) => c.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn constructors_fill_expected_fields() {
        let i = BaseInst::rrr(Opcode::Add, r(2), r(3), r(4));
        assert_eq!((i.rd, i.rs, i.rt), (r(2), r(3), r(4)));
        let i = BaseInst::load(Opcode::L32i, r(5), 8, r(1));
        assert_eq!((i.rd, i.rs, i.imm), (r(5), r(1), 8));
        let i = BaseInst::store(Opcode::S32i, r(5), -4, r(1));
        assert_eq!((i.rt, i.rs, i.imm), (r(5), r(1), -4));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not an rrr opcode")]
    fn rrr_rejects_wrong_format() {
        let _ = BaseInst::rrr(Opcode::Addi, r(1), r(2), r(3));
    }

    #[test]
    fn reads_and_writes() {
        let add = BaseInst::rrr(Opcode::Add, r(2), r(3), r(4));
        assert_eq!(add.reads(), vec![r(3), r(4)]);
        assert_eq!(add.writes(), Some(r(2)));

        let st = BaseInst::store(Opcode::S32i, r(5), 0, r(1));
        assert_eq!(st.reads(), vec![r(1), r(5)]);
        assert_eq!(st.writes(), None);

        let call = BaseInst::jump(Opcode::Call, 0x40);
        assert_eq!(call.writes(), Some(Reg::LINK));
        let j = BaseInst::jump(Opcode::J, 0x40);
        assert_eq!(j.writes(), None);

        let bz = BaseInst::branch_rz(Opcode::Beqz, r(6), 0x10);
        assert_eq!(bz.reads(), vec![r(6)]);
        assert_eq!(bz.writes(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            BaseInst::rrr(Opcode::Add, r(2), r(3), r(4)).to_string(),
            "add a2, a3, a4"
        );
        assert_eq!(
            BaseInst::load(Opcode::L32i, r(5), 8, r(1)).to_string(),
            "l32i a5, 8(a1)"
        );
        assert_eq!(
            BaseInst::branch_rr(Opcode::Beq, r(2), r(3), 0x20).to_string(),
            "beq a2, a3, 0x20"
        );
        assert_eq!(BaseInst::bare(Opcode::Halt).to_string(), "halt");
        assert_eq!(
            BaseInst::extui(r(2), r(3), 4, 8).to_string(),
            "extui a2, a3, 4, 8"
        );
    }

    #[test]
    fn halt_detection() {
        assert!(Inst::from(BaseInst::bare(Opcode::Halt)).is_halt());
        assert!(!Inst::from(BaseInst::bare(Opcode::Nop)).is_halt());
        let c = CustomSlot {
            id: CustomId(1),
            rd: r(0),
            rs: r(0),
            rt: r(0),
            imm: 0,
        };
        assert!(!Inst::from(c).is_halt());
    }

    #[test]
    fn custom_slot_display() {
        let c = CustomSlot {
            id: CustomId(3),
            rd: r(2),
            rs: r(3),
            rt: r(4),
            imm: 5,
        };
        assert_eq!(c.to_string(), "tie#3 a2, a3, a4, 5");
    }
}
