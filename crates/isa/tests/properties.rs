//! Property-based tests for the ISA crate: registers, encodings and the
//! assembler.

use proptest::prelude::*;

use emx_isa::asm::Assembler;
use emx_isa::{encode, BaseInst, Inst, Opcode, Reg};

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::new)
}

proptest! {
    #[test]
    fn register_names_round_trip(r in reg_strategy()) {
        let parsed: Reg = r.to_string().parse().expect("own display parses");
        prop_assert_eq!(parsed, r);
    }

    #[test]
    fn rrr_instructions_encode_operands(op_idx in 0usize..24, rd in reg_strategy(),
                                        rs in reg_strategy(), rt in reg_strategy()) {
        // The first 24 opcodes are the Rrr arithmetic group.
        let op = Opcode::ALL[op_idx];
        prop_assume!(op.format() == emx_isa::Format::Rrr);
        let inst: Inst = BaseInst::rrr(op, rd, rs, rt).into();
        let w = encode(&inst);
        prop_assert_eq!((w >> 24) as usize, op.index());
        prop_assert_eq!(((w >> 20) & 0xf) as usize, rd.index());
        prop_assert_eq!(((w >> 16) & 0xf) as usize, rs.index());
        prop_assert_eq!(((w >> 12) & 0xf) as usize, rt.index());
    }

    #[test]
    fn encoding_is_injective_over_operands(rd1 in reg_strategy(), rd2 in reg_strategy(),
                                           rs in reg_strategy(), rt in reg_strategy()) {
        prop_assume!(rd1 != rd2);
        let a = encode(&BaseInst::rrr(Opcode::Add, rd1, rs, rt).into());
        let b = encode(&BaseInst::rrr(Opcode::Add, rd2, rs, rt).into());
        prop_assert_ne!(a, b);
    }

    #[test]
    fn assembled_rrr_lines_round_trip(op_idx in 0usize..80, rd in 0u8..16,
                                      rs in 0u8..16, rt in 0u8..16) {
        // For every three-register opcode: emit source text, assemble it,
        // and check the decoded instruction carries the same operands.
        let op = Opcode::ALL[op_idx];
        prop_assume!(op.format() == emx_isa::Format::Rrr);
        let src = format!("{} a{rd}, a{rs}, a{rt}\nhalt", op.mnemonic());
        let p = Assembler::new().assemble(&src).expect("assembles");
        match &p.text()[0] {
            Inst::Base(b) => {
                prop_assert_eq!(b.op, op);
                prop_assert_eq!(b.rd.index(), rd as usize);
                prop_assert_eq!(b.rs.index(), rs as usize);
                prop_assert_eq!(b.rt.index(), rt as usize);
            }
            Inst::Custom(_) => prop_assert!(false, "decoded as custom"),
        }
    }

    #[test]
    fn immediates_survive_assembly(imm in -2048i32..2048) {
        let src = format!("addi a2, a3, {imm}\nmovi a4, {imm}\nhalt");
        let p = Assembler::new().assemble(&src).expect("assembles");
        match (&p.text()[0], &p.text()[1]) {
            (Inst::Base(a), Inst::Base(m)) => {
                prop_assert_eq!(a.imm, imm);
                prop_assert_eq!(m.imm, imm);
            }
            _ => prop_assert!(false),
        }
    }

    #[test]
    fn memory_operands_survive_assembly(offset in -1024i32..1024, base in 0u8..16) {
        let off4 = offset * 4;
        let src = format!("l32i a2, {off4}(a{base})\ns32i a2, {off4}(a{base})\nhalt");
        let p = Assembler::new().assemble(&src).expect("assembles");
        match (&p.text()[0], &p.text()[1]) {
            (Inst::Base(l), Inst::Base(s)) => {
                prop_assert_eq!(l.imm, off4);
                prop_assert_eq!(l.rs.index(), base as usize);
                prop_assert_eq!(s.imm, off4);
            }
            _ => prop_assert!(false),
        }
    }

    #[test]
    fn labels_resolve_to_instruction_boundaries(pad in 0usize..20) {
        let mut src = String::new();
        for _ in 0..pad {
            src.push_str("nop\n");
        }
        src.push_str("target:\naddi a2, a2, 1\nj target\nhalt\n");
        let p = Assembler::new().assemble(&src).expect("assembles");
        let addr = p.symbol("target").expect("label defined");
        prop_assert_eq!(addr, 4 * pad as u32);
        match &p.text()[pad + 1] {
            Inst::Base(b) => prop_assert_eq!(b.target, addr),
            Inst::Custom(_) => prop_assert!(false),
        }
    }

    #[test]
    fn comments_never_change_meaning(n in 1u32..50) {
        let plain = format!("movi a2, {n}\naddi a2, a2, 1\nhalt");
        let commented = format!(
            "# header\nmovi a2, {n} # set\n  ; blank-ish\naddi a2, a2, 1 // bump\nhalt\n"
        );
        let a = Assembler::new().assemble(&plain).expect("assembles");
        let b = Assembler::new().assemble(&commented).expect("assembles");
        prop_assert_eq!(a.text(), b.text());
    }
}
