//! Differential fuzzing of the macro-model against the RTL-level
//! reference.
//!
//! The paper's claim is that one characterization generalizes to *any*
//! custom-instruction extension built from the hardware library. The
//! fuzzer stress-tests that claim: it generates random extensions
//! covering all ten `hwlib` categories plus random short programs that
//! exercise them, prices each configuration through both paths — the
//! macro-model (ISS + dot product) and the `rtlpower` reference (detailed
//! pipeline simulation + per-net energy integration) — and flags any case
//! where the two disagree by more than a configured tolerance.
//!
//! Everything is *plain-data recipes*: a [`FuzzCase`] is a handful of
//! small integers that [`build`] expands into a compiled [`ExtensionSet`]
//! and an assembled program. Recipes are what the [`proptest`] stand-in's
//! [`Shrink`] machinery minimizes when a case fails, so counterexamples
//! come back as the smallest extension/program pair that still violates
//! the tolerance.

use emx_core::EnergyMacroModel;
use emx_hwlib::{DfGraph, LookupTable, PrimOp};
use emx_isa::asm::Assembler;
use emx_isa::Program;
use emx_obs::Collector;
use emx_rtlpower::RtlEnergyEstimator;
use emx_sim::ProcConfig;
use emx_tie::{ExtensionBuilder, ExtensionSet, InputBind, OutputBind};
use proptest::shrink::{minimize, Shrink};
use proptest::test_runner::TestRng;

/// Number of generatable unit kinds — one per hardware-library category.
pub const UNIT_KINDS: u8 = 10;

/// One hardware unit of a generated extension: a category selector plus a
/// bit-width knob. Raw fields range over the whole `u8` domain; [`kind`]
/// and [`width`](UnitRecipe::width) fold them into the valid menus, so
/// *every* recipe builds — generation and shrinking never have to avoid
/// "invalid" values.
///
/// [`kind`]: UnitRecipe::kind
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitRecipe {
    /// Raw category selector (folded modulo [`UNIT_KINDS`]).
    pub kind: u8,
    /// Raw width knob (folded into `2..=16`).
    pub width: u8,
}

impl UnitRecipe {
    /// The hardware-library category index this unit instantiates.
    pub fn kind(self) -> u8 {
        self.kind % UNIT_KINDS
    }

    /// Datapath width in bits, folded into `2..=16` so every GPR-bound
    /// port fits the 32-bit limit with room for widening ops.
    pub fn width(self) -> u8 {
        2 + self.width % 15
    }

    /// Human-readable category name, for counterexample reports.
    pub fn kind_name(self) -> &'static str {
        match self.kind() {
            0 => "multiplier",
            1 => "adder/cmp",
            2 => "logic/mux",
            3 => "shifter",
            4 => "custom-register",
            5 => "TIE_mult",
            6 => "TIE_mac",
            7 => "TIE_add",
            8 => "TIE_csa",
            _ => "table",
        }
    }
}

impl Shrink for UnitRecipe {
    fn shrink_candidates(&self) -> Vec<Self> {
        // Shrink the width knob only: the kind is categorical (all kinds
        // are equally "simple"), and rotating it would make the minimized
        // case describe different hardware than the failure.
        self.width
            .shrink_candidates()
            .into_iter()
            .map(|width| UnitRecipe {
                kind: self.kind,
                width,
            })
            .collect()
    }
}

/// A complete fuzz case: the extension units, the loop body (indices into
/// the generated instruction menu, folded modulo its length), and a loop
/// trip-count knob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzCase {
    /// Hardware units of the generated extension (may be empty).
    pub units: Vec<UnitRecipe>,
    /// Loop-body slots; each selects one generated instruction.
    pub ops: Vec<u8>,
    /// Raw trip-count knob (folded into `8..=256`).
    pub iters: u16,
}

impl FuzzCase {
    /// Draws one case from `rng`: up to 3 units, up to 8 loop-body ops.
    pub fn generate(rng: &mut TestRng) -> FuzzCase {
        let n_units = (rng.next_u64() % 4) as usize;
        let units = (0..n_units)
            .map(|_| UnitRecipe {
                kind: rng.next_u64() as u8,
                width: rng.next_u64() as u8,
            })
            .collect();
        let n_ops = 1 + (rng.next_u64() % 8) as usize;
        let ops = (0..n_ops).map(|_| rng.next_u64() as u8).collect();
        FuzzCase {
            units,
            ops,
            iters: rng.next_u64() as u16,
        }
    }

    /// Loop trip count, folded into `8..=256`.
    pub fn iters(&self) -> u32 {
        8 + u32::from(self.iters) % 249
    }
}

impl Shrink for FuzzCase {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for units in self.units.shrink_candidates() {
            out.push(FuzzCase {
                units,
                ..self.clone()
            });
        }
        for ops in self.ops.shrink_candidates() {
            if !ops.is_empty() {
                out.push(FuzzCase {
                    ops,
                    ..self.clone()
                });
            }
        }
        for iters in self.iters.shrink_candidates() {
            out.push(FuzzCase {
                iters,
                ..self.clone()
            });
        }
        out
    }
}

/// One generated instruction's assembly shape.
#[derive(Debug, Clone)]
struct GenInst {
    name: String,
    writes_gpr: bool,
    gpr_reads: u8,
    imm: Option<u32>,
}

/// A recipe expanded into executable form.
#[derive(Debug, Clone)]
pub struct BuiltCase {
    /// The compiled extension set.
    pub ext: ExtensionSet,
    /// The assembled program.
    pub program: Program,
    /// The program's assembly source (for counterexample reports).
    pub source: String,
}

/// Expands unit `i` of a recipe into graph(s) + instruction(s).
///
/// Every category gets a distinct structural template mirroring the
/// hand-written library in `workloads::exts`, but parameterized by the
/// recipe width, so the fuzzer samples the complexity axis `f(C)` as well
/// as the category axis.
fn expand_unit(i: usize, unit: UnitRecipe, ext: &mut ExtensionBuilder, insts: &mut Vec<GenInst>) {
    let w = unit.width();
    let imm_for = |w: u8| u32::from(w) * 3 % 61 + 1;
    match unit.kind() {
        0 => {
            // Multiplier: out = a·b at doubled width.
            let mut g = DfGraph::new();
            let a = g.input("a", w);
            let b = g.input("b", w);
            let m = g
                .node(PrimOp::Mul, (2 * w).min(32), &[a, b])
                .expect("graph");
            g.output(m);
            push_dst(ext, insts, format!("fzmul{i}"), g, 2);
        }
        1 => {
            // Adder/comparator: out = (a+b) with a min() alongside.
            let mut g = DfGraph::new();
            let a = g.input("a", w);
            let b = g.input("b", w);
            let s = g
                .node(PrimOp::Add, (w + 1).min(32), &[a, b])
                .expect("graph");
            let m = g.node(PrimOp::MinU, w, &[a, b]).expect("graph");
            let o = g.node(PrimOp::Pack { lsb: w }, (2 * w).min(32), &[m, s]);
            match o {
                Ok(o) => g.output(o),
                Err(_) => g.output(s),
            };
            push_dst(ext, insts, format!("fzadd{i}"), g, 2);
        }
        2 => {
            // Logic/mux: out = (a&b) ^ (a|b).
            let mut g = DfGraph::new();
            let a = g.input("a", w);
            let b = g.input("b", w);
            let x = g.node(PrimOp::And, w, &[a, b]).expect("graph");
            let y = g.node(PrimOp::Or, w, &[a, b]).expect("graph");
            let o = g.node(PrimOp::Xor, w, &[x, y]).expect("graph");
            g.output(o);
            push_dst(ext, insts, format!("fzlgc{i}"), g, 2);
        }
        3 => {
            // Shifter: out = a << (b mod width).
            let mut g = DfGraph::new();
            let a = g.input("a", w);
            let b = g.input("b", w);
            let o = g.node(PrimOp::Shl, w, &[a, b]).expect("graph");
            g.output(o);
            push_dst(ext, insts, format!("fzsft{i}"), g, 2);
        }
        4 => {
            // Custom register: write xors into state, read slices it out.
            let st = ext.state(format!("fzs{i}"), w).expect("state");
            let mut g = DfGraph::new();
            let a = g.input("a", w);
            let acc = g.input("acc", w);
            let o = g.node(PrimOp::Xor, w, &[a, acc]).expect("graph");
            g.output(o);
            ext.instruction(format!("fzacw{i}"), g)
                .expect("inst")
                .bind_input(InputBind::GprS)
                .expect("bind")
                .bind_input(InputBind::State(st))
                .expect("bind")
                .bind_output(OutputBind::State(st))
                .expect("bind");
            insts.push(GenInst {
                name: format!("fzacw{i}"),
                writes_gpr: false,
                gpr_reads: 1,
                imm: None,
            });

            let mut g = DfGraph::new();
            let acc = g.input("acc", w);
            let o = g
                .node(PrimOp::Slice { lsb: 0 }, w.min(32), &[acc])
                .expect("graph");
            g.output(o);
            ext.instruction(format!("fzacr{i}"), g)
                .expect("inst")
                .bind_input(InputBind::State(st))
                .expect("bind")
                .bind_output(OutputBind::Gpr)
                .expect("bind");
            insts.push(GenInst {
                name: format!("fzacr{i}"),
                writes_gpr: true,
                gpr_reads: 0,
                imm: None,
            });
        }
        5 => {
            // TIE_mult: out = a·b through the specialized module.
            let mut g = DfGraph::new();
            let a = g.input("a", w);
            let b = g.input("b", w);
            let o = g
                .node(PrimOp::TieMult, (2 * w).min(32), &[a, b])
                .expect("graph");
            g.output(o);
            push_dst(ext, insts, format!("fztmu{i}"), g, 2);
        }
        6 => {
            // TIE_mac over an accumulator state, with a read-back inst.
            let acc_w = (2 * w + 8).min(40);
            let st = ext.state(format!("fzm{i}"), acc_w).expect("state");
            let mut g = DfGraph::new();
            let a = g.input("a", w);
            let b = g.input("b", w);
            let acc = g.input("acc", acc_w);
            let o = g.node(PrimOp::TieMac, acc_w, &[a, b, acc]).expect("graph");
            g.output(o);
            ext.instruction(format!("fztma{i}"), g)
                .expect("inst")
                .bind_input(InputBind::GprS)
                .expect("bind")
                .bind_input(InputBind::GprT)
                .expect("bind")
                .bind_input(InputBind::State(st))
                .expect("bind")
                .bind_output(OutputBind::State(st))
                .expect("bind");
            insts.push(GenInst {
                name: format!("fztma{i}"),
                writes_gpr: false,
                gpr_reads: 2,
                imm: None,
            });

            let mut g = DfGraph::new();
            let acc = g.input("acc", acc_w);
            let o = g
                .node(PrimOp::Slice { lsb: 0 }, acc_w.min(32), &[acc])
                .expect("graph");
            g.output(o);
            ext.instruction(format!("fztmr{i}"), g)
                .expect("inst")
                .bind_input(InputBind::State(st))
                .expect("bind")
                .bind_output(OutputBind::Gpr)
                .expect("bind");
            insts.push(GenInst {
                name: format!("fztmr{i}"),
                writes_gpr: true,
                gpr_reads: 0,
                imm: None,
            });
        }
        7 => {
            // TIE_add: three-way add, third operand an immediate.
            let mut g = DfGraph::new();
            let a = g.input("a", w);
            let b = g.input("b", w);
            let c = g.input("c", w.max(6));
            let o = g
                .node(PrimOp::TieAdd, (w + 2).min(32), &[a, b, c])
                .expect("graph");
            g.output(o);
            ext.instruction(format!("fztda{i}"), g)
                .expect("inst")
                .bind_input(InputBind::GprS)
                .expect("bind")
                .bind_input(InputBind::GprT)
                .expect("bind")
                .bind_input(InputBind::Imm)
                .expect("bind")
                .bind_output(OutputBind::Gpr)
                .expect("bind");
            insts.push(GenInst {
                name: format!("fztda{i}"),
                writes_gpr: true,
                gpr_reads: 2,
                imm: Some(imm_for(w)),
            });
        }
        8 => {
            // TIE_csa: carry-save sum, third operand an immediate.
            let mut g = DfGraph::new();
            let a = g.input("a", w);
            let b = g.input("b", w);
            let c = g.input("c", w.max(6));
            let o = g
                .node(PrimOp::TieCsaSum, (w + 2).min(32), &[a, b, c])
                .expect("graph");
            g.output(o);
            ext.instruction(format!("fzcsa{i}"), g)
                .expect("inst")
                .bind_input(InputBind::GprS)
                .expect("bind")
                .bind_input(InputBind::GprT)
                .expect("bind")
                .bind_input(InputBind::Imm)
                .expect("bind")
                .bind_output(OutputBind::Gpr)
                .expect("bind");
            insts.push(GenInst {
                name: format!("fzcsa{i}"),
                writes_gpr: true,
                gpr_reads: 2,
                imm: Some(imm_for(w)),
            });
        }
        _ => {
            // Table: 32-entry lookup of width-bit constants (indices wrap).
            let entries: Vec<u64> = (0..32u64)
                .map(|j| {
                    (j.wrapping_mul(0x9e37_79b9)
                        .wrapping_add(i as u64 * 0x85eb_ca6b))
                        & ((1u64 << w) - 1)
                })
                .collect();
            let mut g = DfGraph::new();
            let t = g.add_table(LookupTable::new(entries, w).expect("table"));
            let a = g.input("a", 8);
            let o = g
                .node(PrimOp::TableLookup { table_index: t }, w, &[a])
                .expect("graph");
            g.output(o);
            push_dst(ext, insts, format!("fztbl{i}"), g, 1);
        }
    }
}

/// Registers a `d[, s[, t]]`-shaped instruction (GPR sources, GPR dest).
fn push_dst(
    ext: &mut ExtensionBuilder,
    insts: &mut Vec<GenInst>,
    name: String,
    g: DfGraph,
    gpr_reads: u8,
) {
    let mut b = ext.instruction(name.clone(), g).expect("inst");
    let binds = [InputBind::GprS, InputBind::GprT];
    for bind in binds.iter().take(usize::from(gpr_reads)) {
        b.bind_input(*bind).expect("bind");
    }
    b.bind_output(OutputBind::Gpr).expect("bind");
    insts.push(GenInst {
        name,
        writes_gpr: true,
        gpr_reads,
        imm: None,
    });
}

/// Expands a recipe into a compiled extension and an assembled program.
///
/// Total by construction: every [`FuzzCase`] — including every shrink
/// candidate — builds successfully, so a failure here is a bug in the
/// generator, not in the recipe.
///
/// # Panics
///
/// Panics if the expansion violates a TIE-compiler or assembler
/// invariant (a generator bug by definition).
pub fn build(case: &FuzzCase) -> BuiltCase {
    let mut ext = ExtensionBuilder::new("fuzz");
    let mut insts = Vec::new();
    for (i, unit) in case.units.iter().enumerate() {
        expand_unit(i, *unit, &mut ext, &mut insts);
    }
    let ext = ext.build().expect("generated extension compiles");

    // The loop: an LCG keeps a3 evolving so custom-instruction operand
    // activity is data-dependent, like real kernels.
    let mut src = String::from("movi a10, 1664525\nmovi a11, 1013904223\n");
    src.push_str(&format!("movi a2, {}\nmovi a3, 0x1357\n", case.iters()));
    src.push_str("loop:\nmul a3, a3, a10\nadd a3, a3, a11\n");
    if !insts.is_empty() {
        for (slot, &op) in case.ops.iter().enumerate() {
            let inst = &insts[usize::from(op) % insts.len()];
            let mut operands = Vec::new();
            if inst.writes_gpr {
                operands.push(format!("a{}", 4 + slot % 6));
            }
            if inst.gpr_reads >= 1 {
                operands.push("a3".to_owned());
            }
            if inst.gpr_reads >= 2 {
                operands.push(["a10", "a11", "a3"][slot % 3].to_owned());
            }
            if let Some(imm) = inst.imm {
                operands.push(imm.to_string());
            }
            src.push_str(&inst.name);
            if !operands.is_empty() {
                src.push(' ');
                src.push_str(&operands.join(", "));
            }
            src.push('\n');
        }
    }
    src.push_str("addi a2, a2, -1\nbnez a2, loop\nhalt\n");

    let mut asm = Assembler::new();
    ext.register_mnemonics(&mut asm);
    let program = asm.assemble(&src).expect("generated program assembles");
    BuiltCase {
        ext,
        program,
        source: src,
    }
}

/// Prices one case through both paths and returns
/// `(model_pj, reference_pj, signed_percent_error)`.
///
/// # Panics
///
/// Panics if either simulation path rejects the generated configuration —
/// builds are total (see [`build`]), so that is a generator bug.
pub fn differential(model: &EnergyMacroModel, built: &BuiltCase) -> (f64, f64, f64) {
    let config = ProcConfig::default();
    let est = model
        .estimate(&built.program, &built.ext, config.clone())
        .expect("generated program simulates");
    let reference = RtlEnergyEstimator::new()
        .estimate(&built.program, &built.ext, config)
        .expect("generated program simulates on the reference path");
    let model_pj = est.energy.as_picojoules();
    let ref_pj = reference.total.as_picojoules();
    let percent = if ref_pj != 0.0 {
        (model_pj - ref_pj) / ref_pj * 100.0
    } else {
        0.0
    };
    (model_pj, ref_pj, percent)
}

/// Fuzzing parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Base seed; case *i* derives its generator from `seed` and `i`, so
    /// any single case reproduces without re-running the whole campaign.
    pub seed: u64,
    /// Number of cases to run.
    pub cases: usize,
    /// Maximum tolerated |percent error| between model and reference.
    pub tolerance_percent: f64,
    /// Shrinking budget per violation (accepted steps).
    pub max_shrink_steps: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0xe9a1_7001,
            cases: 200,
            // Default tolerance: measured over 1000-case campaigns on
            // multiple seeds, the fitted model tracks the reference with
            // a mean |error| of ~12% and a max of ~22% (see DESIGN.md
            // §12); 30% flags genuine model breakage without tripping on
            // extrapolation noise.
            tolerance_percent: 30.0,
            max_shrink_steps: 64,
        }
    }
}

/// One tolerance violation, with its shrunk counterexample.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Index of the violating case within the campaign.
    pub case_index: usize,
    /// The original failing recipe.
    pub case: FuzzCase,
    /// The minimized recipe (still failing).
    pub minimized: FuzzCase,
    /// Signed percent error of the minimized case.
    pub percent_error: f64,
    /// Human-readable counterexample report.
    pub report: String,
}

/// Aggregate result of a fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// Cases run.
    pub cases: usize,
    /// Tolerance used, in percent.
    pub tolerance_percent: f64,
    /// Tolerance violations found (empty on a healthy model).
    pub violations: Vec<Violation>,
    /// Largest |percent error| seen across all cases.
    pub max_abs_percent: f64,
    /// Mean |percent error| across all cases.
    pub mean_abs_percent: f64,
}

/// Pretty-prints a minimized counterexample.
fn describe(case: &FuzzCase, built: &BuiltCase, model_pj: f64, ref_pj: f64, pct: f64) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "minimal counterexample ({} unit(s), {} op slot(s), {} iterations):\n",
        case.units.len(),
        case.ops.len(),
        case.iters()
    ));
    for (i, u) in case.units.iter().enumerate() {
        s.push_str(&format!(
            "  unit {i}: {} @ {} bits\n",
            u.kind_name(),
            u.width()
        ));
    }
    s.push_str(&format!(
        "  model: {model_pj:.1} pJ, reference: {ref_pj:.1} pJ, error: {pct:+.2}%\n"
    ));
    s.push_str("  program:\n");
    for line in built.source.lines() {
        s.push_str("    ");
        s.push_str(line);
        s.push('\n');
    }
    s
}

/// Runs a fuzzing campaign: `config.cases` seeded random configurations,
/// each priced through both estimation paths. Violations are shrunk to
/// minimal counterexamples. Fully deterministic for a fixed config.
///
/// Emits a `fuzz` span with one `fuzz-case:<i>` span per case on `obs`,
/// and counters `validate.fuzz.cases` / `validate.fuzz.violations`.
pub fn run_fuzz(model: &EnergyMacroModel, config: &FuzzConfig, obs: &mut Collector) -> FuzzOutcome {
    let whole = obs.begin("fuzz");
    let mut violations = Vec::new();
    let mut max_abs = 0.0f64;
    let mut sum_abs = 0.0f64;
    for i in 0..config.cases {
        let span = obs.begin(format!("fuzz-case:{i}"));
        let mut rng = TestRng::new(
            config
                .seed
                .wrapping_add((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        );
        let case = FuzzCase::generate(&mut rng);
        let built = build(&case);
        let (_, _, percent) = differential(model, &built);
        max_abs = max_abs.max(percent.abs());
        sum_abs += percent.abs();
        if percent.abs() > config.tolerance_percent {
            let minimized = minimize(case.clone(), config.max_shrink_steps, |candidate| {
                let built = build(candidate);
                differential(model, &built).2.abs() > config.tolerance_percent
            });
            let built = build(&minimized);
            let (m, r, p) = differential(model, &built);
            violations.push(Violation {
                case_index: i,
                report: describe(&minimized, &built, m, r, p),
                case,
                minimized,
                percent_error: p,
            });
        }
        obs.end(span);
    }
    obs.add("validate.fuzz.cases", config.cases as f64);
    obs.add("validate.fuzz.violations", violations.len() as f64);
    obs.end(whole);
    FuzzOutcome {
        cases: config.cases,
        tolerance_percent: config.tolerance_percent,
        violations,
        max_abs_percent: max_abs,
        mean_abs_percent: if config.cases > 0 {
            sum_abs / config.cases as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every kind × several widths expands, compiles and assembles.
    #[test]
    fn all_unit_kinds_build_and_run() {
        for kind in 0..UNIT_KINDS {
            for width in [0u8, 7, 14] {
                let case = FuzzCase {
                    units: vec![UnitRecipe { kind, width }],
                    ops: vec![0, 1, 2],
                    iters: 10,
                };
                let built = build(&case);
                // Both simulation paths accept the configuration.
                let reference = RtlEnergyEstimator::new()
                    .estimate(&built.program, &built.ext, ProcConfig::default())
                    .unwrap_or_else(|e| panic!("kind {kind} width {width}: {e}"));
                assert!(reference.total.as_picojoules() > 0.0);
            }
        }
    }

    #[test]
    fn empty_unit_list_is_a_base_program() {
        let case = FuzzCase {
            units: vec![],
            ops: vec![0, 9],
            iters: 3,
        };
        let built = build(&case);
        assert!(built.ext.is_empty());
        assert!(built.source.contains("halt"));
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = TestRng::new(77);
        let mut b = TestRng::new(77);
        assert_eq!(FuzzCase::generate(&mut a), FuzzCase::generate(&mut b));
    }

    #[test]
    fn shrink_candidates_simplify() {
        let case = FuzzCase {
            units: vec![
                UnitRecipe { kind: 3, width: 9 },
                UnitRecipe { kind: 6, width: 2 },
            ],
            ops: vec![4, 200],
            iters: 999,
        };
        let candidates = case.shrink_candidates();
        assert!(!candidates.is_empty());
        // Unit-list shrinks drop a unit; ops never shrink to empty.
        assert!(candidates.iter().any(|c| c.units.len() == 1));
        assert!(candidates.iter().all(|c| !c.ops.is_empty()));
        // Every candidate still builds.
        for c in &candidates {
            let _ = build(c);
        }
    }

    #[test]
    fn iters_fold_is_bounded() {
        for raw in [0u16, 1, 248, 249, u16::MAX] {
            let case = FuzzCase {
                units: vec![],
                ops: vec![0],
                iters: raw,
            };
            assert!((8..=256).contains(&case.iters()));
        }
    }
}
