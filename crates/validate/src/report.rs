//! The `emx.validate-report/1` document: serialization, parsing, and the
//! golden-report accuracy gate.
//!
//! The report intentionally contains **no timings, hostnames, or
//! absolute paths** — for a fixed seed and workload suite it is
//! byte-stable across reruns, which is what lets CI `cmp` two runs to
//! prove determinism and diff a fresh report against the committed
//! golden.
//!
//! The gate is *one-sided*: a report only fails against the golden when
//! accuracy got **worse** beyond the epsilon — better numbers always
//! pass, so routine model improvements never require a lockstep golden
//! update (regenerate the golden when convenient; see DESIGN.md §12).

use emx_obs::json::Value;

use crate::cachecheck::CacheConsistency;
use crate::fuzz::FuzzOutcome;
use crate::xval::CrossValidation;

/// Schema identifier embedded in, and required of, every report.
pub const SCHEMA: &str = "emx.validate-report/1";

/// Per-variable-group accuracy numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSummary {
    /// Group name (`overall`, `alpha`, `beta`, `gamma_CI`, `delta`).
    pub name: String,
    /// Held-out cases attributed to the group.
    pub cases: u64,
    /// Mean absolute percent error over those cases.
    pub mean_abs_percent: f64,
    /// Worst absolute percent error over those cases.
    pub max_abs_percent: f64,
    /// Coefficient of determination of predicted vs observed energy.
    pub r_squared: f64,
}

/// Differential-fuzzing summary.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzSummary {
    /// Base seed of the campaign.
    pub seed: u64,
    /// Cases run.
    pub cases: u64,
    /// Tolerance used, in percent.
    pub tolerance_percent: f64,
    /// Tolerance violations found.
    pub violations: u64,
    /// Largest |percent error| across all cases.
    pub max_abs_percent: f64,
    /// Mean |percent error| across all cases.
    pub mean_abs_percent: f64,
}

/// DSE cache-consistency summary.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheSummary {
    /// Candidates evaluated three ways.
    pub candidates: u64,
    /// Whether all passes were byte-identical.
    pub byte_identical: bool,
}

/// The comparable content of a validation report.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportSummary {
    /// Fold-scheme label (`loo` or `kfold-<k>`).
    pub scheme: String,
    /// Number of folds refit.
    pub folds: u64,
    /// Folds that needed the ridge fallback.
    pub ridge_folds: u64,
    /// Per-group accuracy, `overall` first.
    pub groups: Vec<GroupSummary>,
    /// Fuzzing summary, when the campaign ran.
    pub fuzz: Option<FuzzSummary>,
    /// Cache-consistency summary, when the check ran.
    pub cache: Option<CacheSummary>,
}

/// Assembles a summary from the validation stages' native results.
pub fn summarize(
    xval: &CrossValidation,
    fuzz: Option<(&FuzzOutcome, u64)>,
    cache: Option<&CacheConsistency>,
) -> ReportSummary {
    ReportSummary {
        scheme: xval.scheme.clone(),
        folds: xval.folds as u64,
        ridge_folds: xval.ridge_folds as u64,
        groups: xval
            .groups
            .iter()
            .map(|g| GroupSummary {
                name: g.name.clone(),
                cases: g.cases as u64,
                mean_abs_percent: g.mean_abs_percent,
                max_abs_percent: g.max_abs_percent,
                r_squared: g.r_squared,
            })
            .collect(),
        fuzz: fuzz.map(|(f, seed)| FuzzSummary {
            seed,
            cases: f.cases as u64,
            tolerance_percent: f.tolerance_percent,
            violations: f.violations.len() as u64,
            max_abs_percent: f.max_abs_percent,
            mean_abs_percent: f.mean_abs_percent,
        }),
        cache: cache.map(|c| CacheSummary {
            candidates: c.candidates as u64,
            byte_identical: c.byte_identical,
        }),
    }
}

/// Renders the full report document (summary plus optional per-case
/// prediction detail for human inspection).
pub fn to_json(summary: &ReportSummary, xval: Option<&CrossValidation>) -> Value {
    let mut doc = Value::object();
    doc.set("schema", SCHEMA);

    let mut cv = Value::object();
    cv.set("scheme", summary.scheme.as_str());
    cv.set("folds", summary.folds as f64);
    cv.set("ridge_folds", summary.ridge_folds as f64);
    let mut groups = Value::array();
    for g in &summary.groups {
        let mut o = Value::object();
        o.set("name", g.name.as_str());
        o.set("cases", g.cases as f64);
        o.set("mean_abs_percent", g.mean_abs_percent);
        o.set("max_abs_percent", g.max_abs_percent);
        o.set("r_squared", g.r_squared);
        groups.push(o);
    }
    cv.set("groups", groups);
    if let Some(xval) = xval {
        let mut preds = Value::array();
        for p in &xval.predictions {
            let mut o = Value::object();
            o.set("name", p.name.as_str());
            o.set("fold", p.fold as f64);
            o.set("observed_pj", p.observed);
            o.set("predicted_pj", p.predicted);
            o.set("percent_error", p.percent_error);
            preds.push(o);
        }
        cv.set("predictions", preds);
    }
    doc.set("cross_validation", cv);

    match &summary.fuzz {
        Some(f) => {
            let mut o = Value::object();
            o.set("seed", f.seed as f64);
            o.set("cases", f.cases as f64);
            o.set("tolerance_percent", f.tolerance_percent);
            o.set("violations", f.violations as f64);
            o.set("max_abs_percent", f.max_abs_percent);
            o.set("mean_abs_percent", f.mean_abs_percent);
            doc.set("fuzz", o);
        }
        None => doc.set("fuzz", Value::Null),
    }
    match &summary.cache {
        Some(c) => {
            let mut o = Value::object();
            o.set("candidates", c.candidates as f64);
            o.set("byte_identical", c.byte_identical);
            doc.set("cache_consistency", o);
        }
        None => doc.set("cache_consistency", Value::Null),
    }
    doc
}

fn field_f64(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field `{key}`"))
}

fn field_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer field `{key}`"))
}

fn field_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing or non-string field `{key}`"))
}

/// Parses a report document back into its comparable summary.
///
/// Rejects unknown schema versions outright: a gate that silently
/// compares across schema changes would pass on vacuous matches.
pub fn parse(text: &str) -> Result<ReportSummary, String> {
    let doc = Value::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let schema = field_str(&doc, "schema")?;
    if schema != SCHEMA {
        return Err(format!(
            "unsupported schema `{schema}` (expected `{SCHEMA}`)"
        ));
    }
    let cv = doc
        .get("cross_validation")
        .ok_or("missing `cross_validation`")?;
    let mut groups = Vec::new();
    for g in cv
        .get("groups")
        .and_then(Value::as_array)
        .ok_or("missing `cross_validation.groups`")?
    {
        groups.push(GroupSummary {
            name: field_str(g, "name")?,
            cases: field_u64(g, "cases")?,
            mean_abs_percent: field_f64(g, "mean_abs_percent")?,
            max_abs_percent: field_f64(g, "max_abs_percent")?,
            r_squared: field_f64(g, "r_squared")?,
        });
    }
    let fuzz = match doc.get("fuzz") {
        None | Some(Value::Null) => None,
        Some(f) => Some(FuzzSummary {
            seed: field_u64(f, "seed")?,
            cases: field_u64(f, "cases")?,
            tolerance_percent: field_f64(f, "tolerance_percent")?,
            violations: field_u64(f, "violations")?,
            max_abs_percent: field_f64(f, "max_abs_percent")?,
            mean_abs_percent: field_f64(f, "mean_abs_percent")?,
        }),
    };
    let cache = match doc.get("cache_consistency") {
        None | Some(Value::Null) => None,
        Some(c) => Some(CacheSummary {
            candidates: field_u64(c, "candidates")?,
            byte_identical: c
                .get("byte_identical")
                .and_then(Value::as_bool)
                .ok_or("missing `cache_consistency.byte_identical`")?,
        }),
    };
    Ok(ReportSummary {
        scheme: field_str(cv, "scheme")?,
        folds: field_u64(cv, "folds")?,
        ridge_folds: field_u64(cv, "ridge_folds")?,
        groups,
        fuzz,
        cache,
    })
}

/// Compares `current` against `golden` with slack `epsilon` (percentage
/// points for error metrics, `epsilon / 100` for R²). Returns the list of
/// regressions — empty means the gate passes.
///
/// One-sided: improvements never fail, and extra groups or newly enabled
/// stages in `current` never fail. Only metrics the golden records can
/// regress.
pub fn compare(current: &ReportSummary, golden: &ReportSummary, epsilon: f64) -> Vec<String> {
    let mut regressions = Vec::new();
    if current.scheme != golden.scheme {
        regressions.push(format!(
            "fold scheme changed: `{}` vs golden `{}` (accuracy numbers are not comparable)",
            current.scheme, golden.scheme
        ));
        return regressions;
    }
    for g in &golden.groups {
        let Some(c) = current.groups.iter().find(|c| c.name == g.name) else {
            regressions.push(format!("group `{}` disappeared from the report", g.name));
            continue;
        };
        if c.mean_abs_percent > g.mean_abs_percent + epsilon {
            regressions.push(format!(
                "group `{}`: mean abs error {:.3}% exceeds golden {:.3}% + {epsilon}pp",
                g.name, c.mean_abs_percent, g.mean_abs_percent
            ));
        }
        if c.max_abs_percent > g.max_abs_percent + epsilon {
            regressions.push(format!(
                "group `{}`: max abs error {:.3}% exceeds golden {:.3}% + {epsilon}pp",
                g.name, c.max_abs_percent, g.max_abs_percent
            ));
        }
        if c.r_squared < g.r_squared - epsilon / 100.0 {
            regressions.push(format!(
                "group `{}`: R² {:.5} fell below golden {:.5} - {}",
                g.name,
                c.r_squared,
                g.r_squared,
                epsilon / 100.0
            ));
        }
    }
    if let Some(gf) = &golden.fuzz {
        match &current.fuzz {
            None => regressions.push("fuzz stage disappeared from the report".to_owned()),
            Some(cf) => {
                if cf.violations > gf.violations {
                    regressions.push(format!(
                        "fuzz violations rose: {} vs golden {}",
                        cf.violations, gf.violations
                    ));
                }
                if cf.max_abs_percent > gf.max_abs_percent + epsilon {
                    regressions.push(format!(
                        "fuzz max abs error {:.3}% exceeds golden {:.3}% + {epsilon}pp",
                        cf.max_abs_percent, gf.max_abs_percent
                    ));
                }
            }
        }
    }
    if let Some(gc) = &golden.cache {
        match &current.cache {
            None => regressions.push("cache-consistency stage disappeared".to_owned()),
            Some(cc) => {
                if gc.byte_identical && !cc.byte_identical {
                    regressions.push("DSE cache is no longer byte-identical".to_owned());
                }
            }
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ReportSummary {
        ReportSummary {
            scheme: "loo".into(),
            folds: 40,
            ridge_folds: 2,
            groups: vec![
                GroupSummary {
                    name: "overall".into(),
                    cases: 40,
                    mean_abs_percent: 3.5,
                    max_abs_percent: 9.1,
                    r_squared: 0.992,
                },
                GroupSummary {
                    name: "gamma_CI".into(),
                    cases: 12,
                    mean_abs_percent: 4.0,
                    max_abs_percent: 8.0,
                    r_squared: 0.99,
                },
            ],
            fuzz: Some(FuzzSummary {
                seed: 7,
                cases: 200,
                tolerance_percent: 25.0,
                violations: 0,
                max_abs_percent: 11.0,
                mean_abs_percent: 4.2,
            }),
            cache: Some(CacheSummary {
                candidates: 16,
                byte_identical: true,
            }),
        }
    }

    #[test]
    fn json_round_trip_preserves_the_summary() {
        let s = sample();
        let text = to_json(&s, None).to_string();
        assert_eq!(parse(&text).expect("parses"), s);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let mut doc = to_json(&sample(), None);
        doc.set("schema", "emx.validate-report/999");
        let err = parse(&doc.to_string()).expect_err("must reject");
        assert!(err.contains("unsupported schema"), "{err}");
    }

    #[test]
    fn identical_reports_pass_the_gate() {
        let s = sample();
        assert!(compare(&s, &s, 0.5).is_empty());
    }

    #[test]
    fn improvements_pass_one_sided() {
        let golden = sample();
        let mut better = golden.clone();
        better.groups[0].mean_abs_percent = 1.0;
        better.groups[0].r_squared = 0.999;
        better.fuzz.as_mut().expect("set").max_abs_percent = 2.0;
        assert!(compare(&better, &golden, 0.5).is_empty());
    }

    #[test]
    fn regressions_beyond_epsilon_fail() {
        let golden = sample();
        let mut worse = golden.clone();
        worse.groups[0].mean_abs_percent += 0.6;
        let regressions = compare(&worse, &golden, 0.5);
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].contains("mean abs error"));

        // Within epsilon: passes.
        let mut jitter = golden.clone();
        jitter.groups[0].mean_abs_percent += 0.4;
        assert!(compare(&jitter, &golden, 0.5).is_empty());
    }

    #[test]
    fn new_fuzz_violations_fail() {
        let golden = sample();
        let mut worse = golden.clone();
        worse.fuzz.as_mut().expect("set").violations = 1;
        let regressions = compare(&worse, &golden, 0.5);
        assert!(regressions.iter().any(|r| r.contains("violations rose")));
    }

    #[test]
    fn cache_breakage_fails() {
        let golden = sample();
        let mut worse = golden.clone();
        worse.cache.as_mut().expect("set").byte_identical = false;
        assert!(!compare(&worse, &golden, 0.5).is_empty());
    }

    #[test]
    fn scheme_mismatch_is_not_comparable() {
        let golden = sample();
        let mut other = golden.clone();
        other.scheme = "kfold-5".into();
        let regressions = compare(&other, &golden, 0.5);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].contains("not comparable"));
    }
}
