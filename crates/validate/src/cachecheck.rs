//! Cache-consistency validation for the design-space-exploration path.
//!
//! The DSE engine's estimation cache must be *transparent*: evaluating a
//! candidate through a cold cache, a JSON-round-tripped cache, or a warm
//! cache must produce byte-identical design points. This module evaluates
//! the built-in candidate space three ways and compares the results
//! bitwise (energies via `f64::to_bits`, never an epsilon — the whole
//! point is exactness).

use emx_core::EnergyMacroModel;
use emx_dse::{evaluate_batch, CandidateSpace, DesignPoint, EstimationCache};
use emx_obs::Collector;
use emx_sim::ProcConfig;

/// Result of the cache-consistency check.
#[derive(Debug, Clone)]
pub struct CacheConsistency {
    /// Candidates evaluated.
    pub candidates: usize,
    /// Whether all three passes produced byte-identical points.
    pub byte_identical: bool,
    /// Human-readable descriptions of any mismatches.
    pub mismatches: Vec<String>,
}

fn points_differ(label: &str, a: &[Option<DesignPoint>], b: &[Option<DesignPoint>]) -> Vec<String> {
    let mut out = Vec::new();
    if a.len() != b.len() {
        out.push(format!(
            "{label}: point count changed: {} vs {}",
            a.len(),
            b.len()
        ));
        return out;
    }
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let same = match (x, y) {
            (None, None) => true,
            (Some(x), Some(y)) => {
                x.name == y.name
                    && x.cycles == y.cycles
                    && x.energy.as_picojoules().to_bits() == y.energy.as_picojoules().to_bits()
            }
            _ => false,
        };
        if !same {
            out.push(format!("{label}: candidate {i} differs: {x:?} vs {y:?}"));
        }
    }
    out
}

/// Evaluates the `reed-solomon` space cold, then through a JSON
/// round-trip of the populated cache, then fully warm, and checks all
/// three batches are byte-identical.
///
/// Emits a `cache-consistency` span on `obs`.
///
/// # Panics
///
/// Panics if the built-in space fails to enumerate or the populated cache
/// fails to round-trip through its own JSON — both indicate repo-level
/// breakage, not a validation finding.
pub fn check_cache_consistency(
    model: &EnergyMacroModel,
    jobs: usize,
    obs: &mut Collector,
) -> CacheConsistency {
    let span = obs.begin("cache-consistency");
    let space = CandidateSpace::by_name("reed-solomon").expect("built-in space exists");
    let enumeration = space.enumerate(None).expect("built-in space enumerates");
    let config = ProcConfig::default();

    let mut cold_cache = EstimationCache::new();
    let cold = evaluate_batch(
        model,
        &enumeration.candidates,
        &config,
        jobs,
        &mut cold_cache,
        obs,
    );

    // Round-trip the populated cache through its JSON persistence format,
    // then re-evaluate: every lookup must hit and reproduce the exact
    // same numbers.
    let text = cold_cache.to_json().to_string();
    let mut thawed = EstimationCache::from_json_text(&text).expect("own JSON parses back");
    let replayed = evaluate_batch(
        model,
        &enumeration.candidates,
        &config,
        jobs,
        &mut thawed,
        obs,
    );

    let warm = evaluate_batch(
        model,
        &enumeration.candidates,
        &config,
        jobs,
        &mut cold_cache,
        obs,
    );

    let mut mismatches = points_differ("json-round-trip", &cold.points, &replayed.points);
    mismatches.extend(points_differ("warm-cache", &cold.points, &warm.points));
    obs.end(span);
    CacheConsistency {
        candidates: enumeration.candidates.len(),
        byte_identical: mismatches.is_empty(),
        mismatches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differ_spots_energy_bit_changes() {
        let p = DesignPoint {
            name: "x".into(),
            energy: emx_core::Energy::from_picojoules(1.0),
            cycles: 10,
        };
        let mut q = p.clone();
        q.energy = emx_core::Energy::from_picojoules(1.0 + f64::EPSILON);
        assert!(points_differ("t", &[Some(p.clone())], &[Some(p.clone())]).is_empty());
        assert_eq!(points_differ("t", &[Some(p)], &[Some(q)]).len(), 1);
    }

    #[test]
    fn differ_spots_shape_changes() {
        let p = DesignPoint {
            name: "x".into(),
            energy: emx_core::Energy::from_picojoules(2.0),
            cycles: 3,
        };
        assert_eq!(points_differ("t", &[Some(p.clone())], &[None]).len(), 1);
        assert_eq!(points_differ("t", &[Some(p)], &[]).len(), 1);
    }
}
