//! # emx-validate — model validation for the energy macro-model
//!
//! The paper (Fei et al., DATE 2003) reports the macro-model's accuracy
//! against RTL power simulation on a handful of benchmarks. This crate
//! turns that one-off table into a repeatable, gated methodology with
//! three independent probes:
//!
//! 1. **Cross-validation** ([`xval`]) — refit the model with each
//!    training case (or fold) held out, predict the held-out energy, and
//!    report mean/max absolute percent error and R² per template-variable
//!    group (base-ISA α, cache/stall β, γ_CI, structural δ). This
//!    measures *generalization*, which the in-sample fit residual
//!    systematically understates.
//! 2. **Differential fuzzing** ([`fuzz`]) — generate random
//!    custom-instruction extensions spanning all ten hardware-library
//!    categories plus random programs, and require the macro-model to
//!    track the RTL-level reference within a tolerance. Violations are
//!    shrunk to minimal counterexamples.
//! 3. **Consistency checks** ([`cachecheck`]) — the DSE estimation cache
//!    must be transparent: cold, JSON-round-tripped, and warm evaluations
//!    of the same candidates must be byte-identical.
//!
//! The results aggregate into a versioned, deterministic
//! [`report::SCHEMA`] document; [`report::compare`] implements the
//! golden-report accuracy gate used by CI (one-sided, epsilon-slacked).

pub mod cachecheck;
pub mod fuzz;
pub mod report;
pub mod xval;

pub use cachecheck::{check_cache_consistency, CacheConsistency};
pub use fuzz::{run_fuzz, FuzzCase, FuzzConfig, FuzzOutcome, UnitRecipe, Violation};
pub use report::{compare, parse, summarize, to_json, ReportSummary, SCHEMA};
pub use xval::{cross_validate, CasePrediction, CrossValidation, FoldScheme, GroupStats};
