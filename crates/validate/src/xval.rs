//! Cross-validation of the macro-model over the characterization suite.
//!
//! The paper fits once on all test programs and reports *in-sample* errors
//! (Fig. 3). In-sample error understates what a user of the model sees:
//! the interesting number is how well a fit predicts a program it never
//! saw. This module refits the model with each fold of the suite held
//! out, predicts the held-out observations with the refit coefficients,
//! and summarizes the out-of-sample errors per template-variable group —
//! base-ISA α, cache/stall β, the custom-instruction γ_CI, and the
//! structural δ coefficients — so a regression in, say, only the table
//! coefficient is visible instead of averaged away.

use emx_obs::Collector;
use emx_regress::{folds, stats, Dataset, FitMethod, FitOptions, RegressError};

/// How the suite is split into held-out folds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FoldScheme {
    /// One fold per observation (`n` refits — the default).
    LeaveOneOut,
    /// `k` stride-interleaved folds (`i % k`), clamped to `2..=n`.
    KFold(usize),
}

impl FoldScheme {
    /// The fold index sets for `n` observations.
    pub fn plan(self, n: usize) -> Vec<Vec<usize>> {
        match self {
            FoldScheme::LeaveOneOut => folds::leave_one_out(n),
            FoldScheme::KFold(k) => folds::kfold(n, k),
        }
    }

    /// Stable label used in reports (`"loo"` or `"kfold-<k>"`).
    pub fn label(self) -> String {
        match self {
            FoldScheme::LeaveOneOut => "loo".to_owned(),
            FoldScheme::KFold(k) => format!("kfold-{k}"),
        }
    }
}

/// One held-out prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct CasePrediction {
    /// Training-case name.
    pub name: String,
    /// Which fold held this case out.
    pub fold: usize,
    /// Measured energy (picojoules) from the reference estimator.
    pub observed: f64,
    /// Energy predicted by the model refit without this fold.
    pub predicted: f64,
    /// Signed percent error of the prediction.
    pub percent_error: f64,
}

/// Out-of-sample accuracy of one template-variable group.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupStats {
    /// Group name (`overall`, `alpha`, `beta`, `gamma_CI`, `delta`).
    pub name: String,
    /// Held-out cases attributed to the group (a case belongs to every
    /// group whose variables it exercises).
    pub cases: usize,
    /// Mean absolute percent prediction error over the group's cases.
    pub mean_abs_percent: f64,
    /// Largest absolute percent prediction error over the group's cases.
    pub max_abs_percent: f64,
    /// Out-of-sample R² over the group's cases (can be negative).
    pub r_squared: f64,
}

/// The result of one cross-validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossValidation {
    /// Scheme label (`"loo"`, `"kfold-5"`).
    pub scheme: String,
    /// Number of folds actually used.
    pub folds: usize,
    /// Folds whose primary (QR, no-ridge) refit was singular and fell
    /// back to a ridge-regularized solve. Nonzero values mean the suite
    /// barely identifies some variable; see DESIGN.md §12.
    pub ridge_folds: usize,
    /// One prediction per observation, in suite order.
    pub predictions: Vec<CasePrediction>,
    /// Per-variable-group accuracy, `overall` first.
    pub groups: Vec<GroupStats>,
}

/// The variable-name prefix defining each reported group, in report order.
const GROUPS: [(&str, &str); 4] = [
    ("alpha", "alpha_"),
    ("beta", "beta_"),
    ("gamma_CI", "gamma"),
    ("delta", "delta_"),
];

/// Ridge weight for the fallback solve on a singular fold. The design
/// matrix carries raw cycle counts (10²–10⁶), so a fixed small ridge
/// perturbs well-identified coefficients negligibly while pinning the
/// unidentified ones at zero instead of aborting the fold.
const FALLBACK_RIDGE: f64 = 1e-3;

/// Cross-validates `dataset` under `scheme`: refits on each fold's
/// complement with `options`, predicts the held-out rows, and attributes
/// the errors to variable groups.
///
/// Emits one `fold:<i>` span per fold on `obs`.
///
/// # Errors
///
/// Propagates a fold refit that fails even with the ridge fallback, and
/// rejects datasets with fewer than 2 observations (via the fold planner's
/// contract — see below).
///
/// # Panics
///
/// Panics if `dataset` has fewer than 2 observations.
pub fn cross_validate(
    dataset: &Dataset,
    scheme: FoldScheme,
    options: FitOptions,
    obs: &mut Collector,
) -> Result<CrossValidation, RegressError> {
    let n = dataset.len();
    let plan = scheme.plan(n);
    let mut predictions: Vec<Option<CasePrediction>> = vec![None; n];
    let mut ridge_folds = 0usize;

    for (fold_index, held_out) in plan.iter().enumerate() {
        let span = obs.begin(format!("fold:{fold_index}"));
        let train = dataset.subset(&folds::complement(n, held_out));
        let fit = match train.fit(options) {
            Ok(fit) => fit,
            Err(RegressError::Singular) | Err(RegressError::Underdetermined { .. }) => {
                ridge_folds += 1;
                train.fit(FitOptions {
                    method: FitMethod::NormalEquations,
                    ridge: FALLBACK_RIDGE,
                })?
            }
            Err(e) => {
                obs.end(span);
                return Err(e);
            }
        };
        for &i in held_out {
            let observed = dataset.observed(i);
            let predicted = fit.predict(dataset.row(i))?;
            let percent_error = if observed != 0.0 {
                (predicted - observed) / observed * 100.0
            } else {
                0.0
            };
            predictions[i] = Some(CasePrediction {
                name: dataset.labels()[i].clone(),
                fold: fold_index,
                observed,
                predicted,
                percent_error,
            });
        }
        obs.end(span);
    }

    let predictions: Vec<CasePrediction> = predictions
        .into_iter()
        .map(|p| p.expect("every observation is held out by exactly one fold"))
        .collect();
    let groups = group_stats(dataset, &predictions);

    Ok(CrossValidation {
        scheme: scheme.label(),
        folds: plan.len(),
        ridge_folds,
        predictions,
        groups,
    })
}

/// Summarizes `predictions` overall and per variable group. A case is
/// attributed to a group when any of the group's variables is nonzero in
/// its row — e.g. a pure base-ISA program never counts against `delta`.
fn group_stats(dataset: &Dataset, predictions: &[CasePrediction]) -> Vec<GroupStats> {
    let names = dataset.names();
    let mut out = vec![summarize(
        "overall",
        &(0..dataset.len()).collect::<Vec<_>>(),
        predictions,
    )];
    for (group, prefix) in GROUPS {
        let columns: Vec<usize> = names
            .iter()
            .enumerate()
            .filter(|(_, n)| n.starts_with(prefix))
            .map(|(i, _)| i)
            .collect();
        let members: Vec<usize> = (0..dataset.len())
            .filter(|&i| {
                let row = dataset.row(i);
                columns.iter().any(|&c| row[c] != 0.0)
            })
            .collect();
        out.push(summarize(group, &members, predictions));
    }
    out
}

fn summarize(name: &str, members: &[usize], predictions: &[CasePrediction]) -> GroupStats {
    let errors: Vec<f64> = members
        .iter()
        .map(|&i| predictions[i].percent_error)
        .collect();
    let observed: Vec<f64> = members.iter().map(|&i| predictions[i].observed).collect();
    let predicted: Vec<f64> = members.iter().map(|&i| predictions[i].predicted).collect();
    GroupStats {
        name: name.to_owned(),
        cases: members.len(),
        mean_abs_percent: stats::mean_abs(&errors),
        max_abs_percent: stats::max_abs(&errors),
        r_squared: stats::r_squared(&observed, &predicted),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y = 3·x1 + 5·x2 with mild label-dependent structure: every scheme
    /// must recover near-perfect held-out predictions.
    fn linear_dataset(n: usize) -> Dataset {
        let mut d = Dataset::new(vec!["alpha_A".into(), "delta_mult".into()]);
        for i in 0..n {
            let x1 = (i as f64) + 1.0;
            let x2 = ((i * 7) % 5) as f64;
            d.push_sample(format!("case{i}"), &[x1, x2], 3.0 * x1 + 5.0 * x2)
                .unwrap();
        }
        d
    }

    fn qr() -> FitOptions {
        FitOptions {
            method: FitMethod::Qr,
            ridge: 0.0,
        }
    }

    #[test]
    fn loo_recovers_an_exact_linear_model() {
        let d = linear_dataset(12);
        let mut obs = Collector::new();
        let cv = cross_validate(&d, FoldScheme::LeaveOneOut, qr(), &mut obs).unwrap();
        assert_eq!(cv.scheme, "loo");
        assert_eq!(cv.folds, 12);
        assert_eq!(cv.ridge_folds, 0);
        assert_eq!(cv.predictions.len(), 12);
        for p in &cv.predictions {
            assert!(
                p.percent_error.abs() < 1e-8,
                "{}: {}",
                p.name,
                p.percent_error
            );
        }
        let overall = &cv.groups[0];
        assert_eq!(overall.name, "overall");
        assert_eq!(overall.cases, 12);
        assert!(overall.r_squared > 1.0 - 1e-9);
        // One fold span per observation.
        let spans = obs.spans();
        assert_eq!(
            spans.iter().filter(|s| s.name.starts_with("fold:")).count(),
            12
        );
    }

    #[test]
    fn kfold_partitions_and_labels() {
        let d = linear_dataset(10);
        let cv =
            cross_validate(&d, FoldScheme::KFold(5), qr(), &mut Collector::disabled()).unwrap();
        assert_eq!(cv.scheme, "kfold-5");
        assert_eq!(cv.folds, 5);
        // Stride folds: case i is held out by fold i % 5.
        for (i, p) in cv.predictions.iter().enumerate() {
            assert_eq!(p.fold, i % 5);
        }
    }

    #[test]
    fn groups_attribute_cases_by_nonzero_variables() {
        // delta_mult is zero for even-indexed cases ((i*7)%5==0 ⇔ i%5==0)…
        let d = linear_dataset(10);
        let cv =
            cross_validate(&d, FoldScheme::KFold(5), qr(), &mut Collector::disabled()).unwrap();
        let find = |name: &str| cv.groups.iter().find(|g| g.name == name).unwrap();
        assert_eq!(find("alpha").cases, 10, "x1 is nonzero everywhere");
        assert_eq!(find("delta").cases, 8, "x2 is zero at i = 0 and 5");
        assert_eq!(find("beta").cases, 0, "no beta variables in this dataset");
        assert_eq!(find("gamma_CI").cases, 0);
    }

    #[test]
    fn singular_fold_falls_back_to_ridge() {
        // delta_mult is nonzero in exactly one case: holding that case out
        // leaves an all-zero column, a singular system.
        let mut d = Dataset::new(vec!["alpha_A".into(), "delta_mult".into()]);
        for i in 0..8 {
            let x2 = if i == 3 { 2.0 } else { 0.0 };
            let x1 = (i as f64) + 1.0 + ((i * 3) % 4) as f64;
            d.push_sample(format!("case{i}"), &[x1, x2], 3.0 * x1 + 5.0 * x2)
                .unwrap();
        }
        let cv = cross_validate(
            &d,
            FoldScheme::LeaveOneOut,
            qr(),
            &mut Collector::disabled(),
        )
        .unwrap();
        assert!(cv.ridge_folds >= 1, "fold 3 must have needed the fallback");
        assert_eq!(cv.predictions.len(), 8);
        // The well-identified cases still predict accurately.
        for p in cv.predictions.iter().filter(|p| p.name != "case3") {
            assert!(
                p.percent_error.abs() < 1.0,
                "{}: {}",
                p.name,
                p.percent_error
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn one_observation_panics() {
        let mut d = Dataset::new(vec!["alpha_A".into()]);
        d.push_sample("only", &[1.0], 3.0).unwrap();
        let _ = cross_validate(
            &d,
            FoldScheme::LeaveOneOut,
            qr(),
            &mut Collector::disabled(),
        );
    }
}
