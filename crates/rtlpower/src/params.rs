use emx_isa::op::ExecUnit;

/// Ground-truth energy parameters of the fixed base-processor blocks.
///
/// Like [`emx_hwlib::HwEnergyParams`], these stand in for the gate-level
/// characterization a commercial RTL power tool applies internally; the
/// macro-model never sees them. Defaults give a total of roughly
/// 0.4–0.6 nJ per cycle — ~75–110 mW at 187 MHz — which is the right
/// ballpark for a 0.25 µm synthesizable RISC core like the paper's
/// Xtensa T1040.
///
/// All values are picojoules; `*_toggle` values are per toggled bit.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field names are self-describing; see struct docs
pub struct BaseEnergyParams {
    /// Clock tree + pipeline registers, charged every cycle (including
    /// stall, flush and miss cycles).
    pub clock_per_cycle: f64,
    /// I-cache array read per fetch.
    pub fetch_access: f64,
    /// Fetch/decode path switching per toggled encoding bit.
    pub fetch_toggle: f64,
    /// Instruction decoder per instruction.
    pub decode: f64,
    /// Register-file energy per read port access.
    pub regfile_read: f64,
    /// Register-file energy per write.
    pub regfile_write: f64,
    /// Operand/result bus switching per toggled bit.
    pub bus_toggle: f64,
    /// EX-stage base energy per op, by functional unit.
    pub alu_adder: f64,
    pub alu_logic: f64,
    pub alu_shifter: f64,
    pub alu_multiplier: f64,
    pub alu_move: f64,
    /// EX-stage switching per toggled *internal net* of the structural
    /// unit models in [`crate::gates`] (all units churn on every operand
    /// change; see `ExStageNets`).
    pub ex_net_toggle: f64,
    /// D-cache array read / write per access.
    pub dcache_read: f64,
    pub dcache_write: f64,
    /// Line fill on a D-cache miss (32-byte burst + bus interface).
    pub dcache_miss: f64,
    /// Dirty-line write-back burst.
    pub dcache_writeback: f64,
    /// Line fill on an I-cache miss.
    pub icache_miss: f64,
    /// One uncached (cache-bypassing) access over the system bus.
    pub uncached_access: f64,
    /// Extra energy per stall/flush cycle beyond the clock tree.
    pub stall_per_cycle: f64,
    /// TIE decoder / bypass / interlock control logic, per custom
    /// instruction execution and unit of control complexity.
    pub tie_control: f64,
}

impl Default for BaseEnergyParams {
    fn default() -> Self {
        BaseEnergyParams {
            clock_per_cycle: 96.0,
            fetch_access: 158.0,
            fetch_toggle: 0.9,
            decode: 37.0,
            regfile_read: 26.0,
            regfile_write: 34.0,
            bus_toggle: 1.0,
            alu_adder: 54.0,
            alu_logic: 21.0,
            alu_shifter: 86.0,
            alu_multiplier: 298.0,
            alu_move: 9.0,
            ex_net_toggle: 0.025,
            dcache_read: 188.0,
            dcache_write: 226.0,
            dcache_miss: 2150.0,
            dcache_writeback: 880.0,
            icache_miss: 2450.0,
            uncached_access: 1400.0,
            stall_per_cycle: 17.0,
            tie_control: 6.0,
        }
    }
}

impl BaseEnergyParams {
    /// EX-stage base energy for one functional unit.
    pub fn alu_energy(&self, unit: ExecUnit) -> f64 {
        match unit {
            ExecUnit::Adder => self.alu_adder,
            ExecUnit::Logic => self.alu_logic,
            ExecUnit::Shifter => self.alu_shifter,
            ExecUnit::Multiplier => self.alu_multiplier,
            ExecUnit::Move => self.alu_move,
            ExecUnit::None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_cycle_total_is_plausible() {
        // A typical ALU instruction with moderate switching should land
        // between 0.3 and 0.8 nJ (≈55–150 mW at 187 MHz).
        let p = BaseEnergyParams::default();
        let typical = p.clock_per_cycle
            + p.fetch_access
            + p.fetch_toggle * 8.0
            + p.decode
            + 2.0 * p.regfile_read
            + p.bus_toggle * 16.0
            + p.alu_adder
            + p.ex_net_toggle * 400.0
            + p.regfile_write;
        assert!((300.0..800.0).contains(&typical), "typical = {typical}");
    }

    #[test]
    fn unit_energies_ordered() {
        let p = BaseEnergyParams::default();
        assert!(p.alu_energy(ExecUnit::Multiplier) > p.alu_energy(ExecUnit::Shifter));
        assert!(p.alu_energy(ExecUnit::Shifter) > p.alu_energy(ExecUnit::Adder));
        assert!(p.alu_energy(ExecUnit::Adder) > p.alu_energy(ExecUnit::Logic));
        assert_eq!(p.alu_energy(ExecUnit::None), 0.0);
    }

    #[test]
    fn miss_events_dominate_hits() {
        let p = BaseEnergyParams::default();
        assert!(p.dcache_miss > 5.0 * p.dcache_read);
        assert!(p.icache_miss > 5.0 * p.fetch_access);
    }
}
