//! RTL-level reference energy estimation for extended emx processors.
//!
//! In the paper, the dependent variable of the regression — the "true"
//! energy of each test program — is measured by simulating the synthesized
//! RTL of the extended processor in ModelSim and feeding the traces to a
//! commercial RTL power estimator (Sente WattWatcher). Both tools are
//! proprietary, so this crate provides the substitute: a **structural,
//! per-activity energy integrator** that walks the detailed simulation
//! trace of [`emx_sim::PipelineSim`] and charges every hardware block of
//! the processor for what it did each cycle:
//!
//! * clock tree and pipeline registers (every cycle, including stalls),
//! * instruction fetch + I-cache arrays, with Hamming-distance switching
//!   on the fetched encoding; miss line-fill bursts; uncached accesses,
//! * decoder, register-file read/write ports, operand/result buses
//!   (per-bit switching),
//! * per-unit EX-stage energy (adder / logic / barrel shifter / 2-cycle
//!   multiplier / bypass), operand-dependent,
//! * D-cache reads/writes/misses/dirty write-backs,
//! * every custom-hardware component instance (via
//!   [`emx_hwlib::HwEnergyParams`]): data-dependent switching between
//!   consecutive activations, custom-register accesses, auto-generated
//!   TIE decoder/control overhead, leakage of instantiated custom logic,
//!   and the idle coupling of shared-operand-bus datapaths (the paper's
//!   Fig. 1 side effects).
//!
//! The result is deliberately *richer* than the 21-variable macro-model —
//! data-dependence, per-op differences within a class, line dirtiness —
//! so regression against it produces realistic, non-zero fitting errors,
//! exactly as regression against WattWatcher does in the paper.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use emx_isa::asm::Assembler;
//! use emx_rtlpower::RtlEnergyEstimator;
//! use emx_sim::ProcConfig;
//! use emx_tie::ExtensionSet;
//!
//! let program = Assembler::new().assemble("movi a2, 41\naddi a2, a2, 1\nhalt")?;
//! let ext = ExtensionSet::empty();
//! let report = RtlEnergyEstimator::new().estimate(&program, &ext, ProcConfig::default())?;
//! assert!(report.total.as_picojoules() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod energy;
mod estimator;
pub mod gates;
mod params;

pub use energy::{Energy, EnergyBreakdown};
pub use estimator::{EnergyReport, PowerProfile, RtlEnergyEstimator};
pub use params::BaseEnergyParams;
