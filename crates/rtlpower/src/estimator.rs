use emx_hwlib::{Category, HwEnergyParams};
use emx_isa::{CustomId, Program, Reg};
use emx_obs::Collector;
use emx_sim::{
    ActivitySink, ExecStats, InstKind, InstRecord, MemAccess, PipelineSim, ProcConfig, SimError,
};
use emx_tie::{ExtensionSet, InputBind, OutputBind};

use crate::gates::ExStageNets;
use crate::{BaseEnergyParams, Energy, EnergyBreakdown};

/// Counts toggled bits between two 32-bit net vectors the way an RTL
/// power tool does: by walking the nets. (Deliberately not `count_ones`;
/// per-net iteration is the granularity the reference flow pays for.)
fn net_toggles32(a: u32, b: u32) -> f64 {
    let x = a ^ b;
    let mut n = 0u32;
    for bit in 0..32 {
        n += (x >> bit) & 1;
    }
    f64::from(n)
}

fn net_toggles64(a: u64, b: u64) -> f64 {
    let x = a ^ b;
    let mut n = 0u64;
    for bit in 0..64 {
        n += (x >> bit) & 1;
    }
    n as f64
}

/// One energy-relevant component of a custom instruction's datapath, with
/// the dataflow node whose value determines its switching.
#[derive(Debug, Clone)]
struct PlanComponent {
    node: usize,
    category: Category,
    complexity: f64,
}

/// Precompiled energy plan for one custom instruction.
#[derive(Debug, Clone)]
struct InstPlan {
    components: Vec<PlanComponent>,
    control: f64,
    node_count: usize,
    gpr_read_ports: u32,
    /// Values fed to the graph when the instruction is *idle*: the
    /// GPR-bound inputs follow the shared operand buses, everything else
    /// holds zero (decoder outputs are quiescent).
    idle_input_template: Vec<IdleInput>,
    has_gpr_input: bool,
}

#[derive(Debug, Clone, Copy)]
enum IdleInput {
    BusA,
    BusB,
    Zero,
}

fn build_plans(ext: &ExtensionSet) -> Vec<InstPlan> {
    ext.iter()
        .map(|inst| {
            let graph = inst.graph();
            let mut components: Vec<PlanComponent> = graph
                .op_nodes()
                .into_iter()
                .map(|info| PlanComponent {
                    node: info.id.index(),
                    category: info.category,
                    complexity: info.complexity(),
                })
                .collect();
            // Custom-register reads: state-bound inputs.
            for (bind, id) in inst.input_binds().iter().zip(graph.input_ids()) {
                if let InputBind::State(_) = bind {
                    let w = graph.width(*id);
                    components.push(PlanComponent {
                        node: id.index(),
                        category: Category::CustomReg,
                        complexity: Category::CustomReg.complexity(w, 0),
                    });
                }
            }
            // Custom-register writes: state-bound outputs.
            for (bind, id) in inst.output_binds().iter().zip(graph.output_ids()) {
                if let OutputBind::State(_) = bind {
                    let w = graph.width(*id);
                    components.push(PlanComponent {
                        node: id.index(),
                        category: Category::CustomReg,
                        complexity: Category::CustomReg.complexity(w, 0),
                    });
                }
            }
            let sig = inst.signature();
            let idle_input_template: Vec<IdleInput> = inst
                .input_binds()
                .iter()
                .map(|b| match b {
                    InputBind::GprS => IdleInput::BusA,
                    InputBind::GprT => IdleInput::BusB,
                    _ => IdleInput::Zero,
                })
                .collect();
            let has_gpr_input = idle_input_template
                .iter()
                .any(|i| !matches!(i, IdleInput::Zero));
            InstPlan {
                components,
                control: inst.control_complexity(),
                node_count: graph.node_count(),
                gpr_read_ports: u32::from(sig.gpr_reads),
                idle_input_template,
                has_gpr_input,
            }
        })
        .collect()
}

/// One row of the materialized activity trace — the in-memory analogue of
/// the RTL simulation dump the paper feeds from ModelSim to WattWatcher.
#[derive(Debug, Clone)]
struct TraceRecord {
    word: u32,
    kind: InstKind,
    operand_a: u32,
    operand_b: u32,
    result: Option<(Reg, u32)>,
    cycles: u32,
    stall_cycles: u32,
    flush_cycles: u32,
    fetch_hit: bool,
    fetch_uncached: bool,
    mem: Option<MemAccess>,
    custom_nodes: Option<(CustomId, Vec<u64>)>,
}

/// Phase-1 sink: materializes the full trace.
struct TraceCollector {
    trace: Vec<TraceRecord>,
}

impl ActivitySink for TraceCollector {
    fn record(&mut self, r: &InstRecord<'_>) {
        self.trace.push(TraceRecord {
            word: r.word,
            kind: r.kind,
            operand_a: r.operand_a,
            operand_b: r.operand_b,
            result: r.result,
            cycles: r.cycles,
            stall_cycles: r.stall_cycles,
            flush_cycles: r.flush_cycles,
            fetch_hit: r.fetch_hit,
            fetch_uncached: r.fetch_uncached,
            mem: r.mem,
            custom_nodes: r.custom.map(|c| (c.id, c.node_values.to_vec())),
        });
    }
}

/// Phase-2 integrator: walks the trace cycle by cycle and net by net.
struct Integrator<'p> {
    base: &'p BaseEnergyParams,
    hw: &'p HwEnergyParams,
    ext: &'p ExtensionSet,
    plans: Vec<InstPlan>,
    prev_word: u32,
    prev_a: u32,
    prev_b: u32,
    prev_result: u32,
    /// Per-instruction node values at the last *execution*.
    prev_active_nodes: Vec<Vec<u64>>,
    /// Per-instruction node values of the most recent idle-churn
    /// evaluation (the combinational datapath follows the operand buses
    /// even when its instruction is not decoded).
    idle_nodes: Vec<Vec<u64>>,
    idle_scratch: Vec<u64>,
    ex_nets: ExStageNets,
    leak_complexity: f64,
    bd: EnergyBreakdown,
    cycle: u64,
    profile: Option<ProfileAcc>,
}

/// Accumulates energy per fixed-size cycle window.
struct ProfileAcc {
    window_cycles: u64,
    windows: Vec<f64>,
}

impl<'p> Integrator<'p> {
    fn new(base: &'p BaseEnergyParams, hw: &'p HwEnergyParams, ext: &'p ExtensionSet) -> Self {
        let plans = build_plans(ext);
        let prev_active_nodes: Vec<Vec<u64>> =
            plans.iter().map(|p| vec![0u64; p.node_count]).collect();
        let idle_nodes = prev_active_nodes.clone();
        let leak_complexity = ext.instantiated_complexity().iter().sum::<f64>();
        Integrator {
            base,
            hw,
            ext,
            plans,
            prev_word: 0,
            prev_a: 0,
            prev_b: 0,
            prev_result: 0,
            prev_active_nodes,
            idle_nodes,
            idle_scratch: Vec::new(),
            ex_nets: ExStageNets::new(),
            leak_complexity,
            bd: EnergyBreakdown::default(),
            cycle: 0,
            profile: None,
        }
    }

    fn pj(slot: &mut Energy, amount: f64) {
        *slot += Energy::from_picojoules(amount);
    }

    fn integrate(&mut self, trace: &[TraceRecord]) {
        for r in trace {
            let before = self.bd.total();
            self.step(r);
            if let Some(profile) = &mut self.profile {
                let delta = (self.bd.total() - before).as_picojoules();
                let window = (self.cycle / profile.window_cycles) as usize;
                if profile.windows.len() <= window {
                    profile.windows.resize(window + 1, 0.0);
                }
                profile.windows[window] += delta;
            }
            self.cycle += u64::from(r.cycles);
        }
    }

    fn step(&mut self, r: &TraceRecord) {
        let base = self.base;

        // Clock tree, pipeline registers and custom-hardware leakage are
        // charged cycle by cycle (an RTL flow sees every edge, including
        // stall and miss cycles).
        for _ in 0..r.cycles {
            Self::pj(&mut self.bd.clock, base.clock_per_cycle);
            if self.leak_complexity > 0.0 {
                Self::pj(
                    &mut self.bd.leakage,
                    self.hw.leakage_per_cycle() * self.leak_complexity,
                );
            }
        }

        // Fetch path.
        if r.fetch_uncached {
            Self::pj(&mut self.bd.fetch, base.uncached_access);
        } else {
            let toggles = net_toggles32(self.prev_word, r.word);
            Self::pj(
                &mut self.bd.fetch,
                base.fetch_access + base.fetch_toggle * toggles,
            );
            if !r.fetch_hit {
                Self::pj(&mut self.bd.fetch, base.icache_miss);
            }
        }
        self.prev_word = r.word;

        // Decode.
        Self::pj(&mut self.bd.decode, base.decode);

        // Operand buses and register-file read ports.
        let ham_a = net_toggles32(self.prev_a, r.operand_a);
        let ham_b = net_toggles32(self.prev_b, r.operand_b);
        Self::pj(&mut self.bd.buses, base.bus_toggle * (ham_a + ham_b));
        let read_ports = match r.kind {
            InstKind::Base(..) => 2.0,
            InstKind::Custom(id) => f64::from(self.plans[id.0 as usize].gpr_read_ports),
        };
        Self::pj(&mut self.bd.regfile, base.regfile_read * read_ports);
        self.prev_a = r.operand_a;
        self.prev_b = r.operand_b;

        // EX stage. None of the functional units are operand-isolated:
        // every one of them — including the 32×32 multiplier array — sees
        // the operand buses and switches its internal nets whenever the
        // operands change, whichever result the EX mux selects. The active
        // unit is additionally charged its data-independent energy.
        let ex = self.ex_nets.drive(r.operand_a, r.operand_b);
        Self::pj(
            &mut self.bd.execute,
            base.ex_net_toggle * f64::from(ex.total()),
        );
        if let InstKind::Base(_, unit) = r.kind {
            Self::pj(&mut self.bd.execute, base.alu_energy(unit));
        }

        // Result bus + register write.
        if let Some((_, value)) = r.result {
            Self::pj(
                &mut self.bd.buses,
                base.bus_toggle * net_toggles32(self.prev_result, value),
            );
            Self::pj(&mut self.bd.regfile, base.regfile_write);
            self.prev_result = value;
        }

        // Data memory.
        if let Some(m) = r.mem {
            if m.uncached {
                Self::pj(&mut self.bd.dmem, base.uncached_access);
            } else {
                let access = if m.write {
                    base.dcache_write
                } else {
                    base.dcache_read
                };
                Self::pj(&mut self.bd.dmem, access);
                if !m.hit {
                    Self::pj(&mut self.bd.dmem, base.dcache_miss);
                }
                if m.writeback {
                    Self::pj(&mut self.bd.dmem, base.dcache_writeback);
                }
            }
        }

        // Stall / flush overhead.
        Self::pj(
            &mut self.bd.stall,
            base.stall_per_cycle * f64::from(r.stall_cycles + r.flush_cycles),
        );

        // Custom hardware. The combinational datapath of *every* custom
        // instruction is wired to the shared operand buses, so it churns
        // on every instruction, executing or not — exactly what an RTL
        // simulation of the extended core evaluates. The instruction that
        // actually executes is charged full per-category activation
        // energy; the idle ones are charged the (clock-gated) coupling
        // energy per toggled net.
        let executing = r.custom_nodes.as_ref().map(|(id, _)| *id);
        for idx in 0..self.plans.len() {
            if Some(CustomId(idx as u16)) == executing {
                continue;
            }
            if !self.plans[idx].has_gpr_input {
                continue;
            }
            self.idle_churn(idx, r.operand_a, r.operand_b);
        }
        if let Some((id, node_values)) = &r.custom_nodes {
            let idx = id.0 as usize;
            let plan = &self.plans[idx];
            let prev = &mut self.prev_active_nodes[idx];
            let mut datapath = 0.0;
            for comp in &plan.components {
                let toggles = net_toggles64(prev[comp.node], node_values[comp.node]);
                datapath += self.hw.base(comp.category) * comp.complexity
                    + self.hw.toggle_per_bit(comp.category) * toggles;
            }
            prev.copy_from_slice(node_values);
            // The active datapath values also become the idle baseline.
            self.idle_nodes[idx].copy_from_slice(node_values);
            Self::pj(&mut self.bd.custom, datapath);
            Self::pj(&mut self.bd.control, base.tie_control * plan.control);
        }
    }

    /// Re-evaluates an idle custom datapath on the current operand-bus
    /// values and charges coupling energy for every toggled net.
    fn idle_churn(&mut self, idx: usize, bus_a: u32, bus_b: u32) {
        let plan = &self.plans[idx];
        // Plans are built from `ext`, so the id resolves by construction;
        // if it ever didn't, skipping the idle charge degrades the
        // estimate for one unit instead of aborting the run.
        let Some(inst) = self.ext.get(CustomId(idx as u16)) else {
            return;
        };
        let mut inputs = [0u64; 16];
        for (slot, kind) in inputs.iter_mut().zip(&plan.idle_input_template) {
            *slot = match kind {
                IdleInput::BusA => u64::from(bus_a),
                IdleInput::BusB => u64::from(bus_b),
                IdleInput::Zero => 0,
            };
        }
        let n = plan.idle_input_template.len();
        if inst
            .graph()
            .eval_into(&inputs[..n], &mut self.idle_scratch)
            .is_err()
        {
            return; // cannot happen for a compiled instruction
        }
        let prev = &mut self.idle_nodes[idx];
        let mut toggles = 0.0;
        for (p, &v) in prev.iter_mut().zip(self.idle_scratch.iter()) {
            toggles += net_toggles64(*p, v);
            *p = v;
        }
        Self::pj(
            &mut self.bd.custom,
            self.hw.idle_coupling_per_bit() * toggles,
        );
    }
}

/// Energy over time at fixed cycle-window granularity — the
/// power-waveform view an RTL power tool reports alongside totals.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerProfile {
    window_cycles: u64,
    windows: Vec<f64>,
}

impl PowerProfile {
    /// Window size in cycles.
    pub fn window_cycles(&self) -> u64 {
        self.window_cycles
    }

    /// Energy per window, in execution order.
    pub fn windows(&self) -> Vec<Energy> {
        self.windows
            .iter()
            .map(|&pj| Energy::from_picojoules(pj))
            .collect()
    }

    /// Average power of the busiest window, in milliwatts at `clock_mhz`.
    pub fn peak_power_mw(&self, clock_mhz: f64) -> f64 {
        self.windows.iter().fold(0.0f64, |m, &pj| m.max(pj)) * clock_mhz
            / self.window_cycles as f64
            / 1000.0
    }

    /// Mean window power in milliwatts at `clock_mhz`.
    pub fn average_power_mw(&self, clock_mhz: f64) -> f64 {
        if self.windows.is_empty() {
            return 0.0;
        }
        let total: f64 = self.windows.iter().sum();
        total * clock_mhz / (self.window_cycles as f64 * self.windows.len() as f64) / 1000.0
    }

    /// Exports the profile as a `rtl.window_energy_pj` counter series on
    /// the collector's simulated-time track (one sample per window, at
    /// the window's end cycle) — the Chrome trace then shows the power
    /// waveform against the same cycle axis as the ISS counters.
    pub fn export_to(&self, obs: &mut Collector) {
        for (i, &pj) in self.windows.iter().enumerate() {
            let ts = (i as u64 + 1) * self.window_cycles;
            obs.sample_at("rtl.window_energy_pj", ts, pj);
        }
    }
}

/// Result of one reference energy estimation run.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyReport {
    /// Total energy.
    pub total: Energy,
    /// Per-block decomposition.
    pub breakdown: EnergyBreakdown,
    /// Execution statistics of the underlying detailed simulation.
    pub stats: ExecStats,
}

impl EnergyReport {
    /// Average power at the given clock, in milliwatts.
    pub fn average_power_mw(&self, clock_mhz: f64) -> f64 {
        self.total
            .average_power_mw(self.stats.total_cycles, clock_mhz)
    }
}

/// The RTL-level reference energy estimator (WattWatcher substitute).
///
/// Estimation is a two-phase flow mirroring the paper's setup: the
/// detailed pipeline simulation first **materializes a full activity
/// trace** (ModelSim's role), which is then integrated **cycle by cycle
/// and net by net** — per-bit bus/fetch toggle counting, per-cycle clock
/// and leakage accounting, full re-evaluation of every custom datapath's
/// combinational logic on each instruction's operand-bus values whether
/// or not its instruction executes (WattWatcher's role). This is
/// intentionally the *slow, accurate* path of the methodology; the
/// macro-model exists so that design-space exploration does not have to
/// run it.
///
/// Construct one (optionally with custom block parameters), then call
/// [`RtlEnergyEstimator::estimate`] for each program × extended-processor
/// configuration. See the crate-level docs for the modeling scope.
#[derive(Debug, Clone, Default)]
pub struct RtlEnergyEstimator {
    base: BaseEnergyParams,
    hw: HwEnergyParams,
}

impl RtlEnergyEstimator {
    /// Creates an estimator with the default 0.25 µm-class parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an estimator with explicit block parameters (for ablation
    /// and sensitivity studies).
    pub fn with_params(base: BaseEnergyParams, hw: HwEnergyParams) -> Self {
        RtlEnergyEstimator { base, hw }
    }

    /// The base-block parameters in use.
    pub fn base_params(&self) -> &BaseEnergyParams {
        &self.base
    }

    /// The custom-hardware parameters in use.
    pub fn hw_params(&self) -> &HwEnergyParams {
        &self.hw
    }

    /// Runs the detailed simulation of `program` on the extended processor
    /// `ext` and integrates per-activity energy.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors; uses a generous internal cycle budget
    /// of 2³² cycles (a program that runs longer returns
    /// [`SimError::CycleLimit`]).
    pub fn estimate(
        &self,
        program: &Program,
        ext: &ExtensionSet,
        config: ProcConfig,
    ) -> Result<EnergyReport, SimError> {
        self.estimate_bounded(program, ext, config, u64::from(u32::MAX))
    }

    /// Like [`RtlEnergyEstimator::estimate`] with an explicit cycle budget.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors, including [`SimError::CycleLimit`].
    pub fn estimate_bounded(
        &self,
        program: &Program,
        ext: &ExtensionSet,
        config: ProcConfig,
        max_cycles: u64,
    ) -> Result<EnergyReport, SimError> {
        self.estimate_traced(program, ext, config, max_cycles, &mut Collector::disabled())
    }

    /// Like [`RtlEnergyEstimator::estimate_bounded`], with both phases
    /// instrumented on `obs`: an `rtl-activity-trace` span around the
    /// detailed simulation, an `rtl-energy-integration` span around the
    /// net-level integration, and `rtl.trace_records` / `rtl.energy_pj`
    /// counters. A disabled collector makes this identical to
    /// [`RtlEnergyEstimator::estimate_bounded`] (which delegates here).
    ///
    /// # Errors
    ///
    /// Propagates simulation errors, including [`SimError::CycleLimit`].
    pub fn estimate_traced(
        &self,
        program: &Program,
        ext: &ExtensionSet,
        config: ProcConfig,
        max_cycles: u64,
        obs: &mut Collector,
    ) -> Result<EnergyReport, SimError> {
        // Phase 1: detailed simulation → materialized activity trace.
        let span = obs.begin("rtl-activity-trace");
        let mut sim = PipelineSim::new(program, ext, config);
        let mut collector = TraceCollector { trace: Vec::new() };
        let run = sim.run(&mut collector, max_cycles);
        obs.end(span);
        let run = run?;
        obs.add("rtl.trace_records", collector.trace.len() as f64);

        // Phase 2: cycle-by-cycle, net-by-net energy integration.
        let span = obs.begin("rtl-energy-integration");
        let mut integrator = Integrator::new(&self.base, &self.hw, ext);
        integrator.integrate(&collector.trace);
        obs.end(span);
        obs.add("rtl.energy_pj", integrator.bd.total().as_picojoules());

        Ok(EnergyReport {
            total: integrator.bd.total(),
            breakdown: integrator.bd,
            stats: run.stats,
        })
    }

    /// Like [`RtlEnergyEstimator::estimate`], additionally returning the
    /// energy-over-time profile at `window_cycles` granularity (peak and
    /// average power, per-window energies).
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    ///
    /// # Panics
    ///
    /// Panics if `window_cycles` is zero.
    pub fn estimate_profiled(
        &self,
        program: &Program,
        ext: &ExtensionSet,
        config: ProcConfig,
        window_cycles: u64,
    ) -> Result<(EnergyReport, PowerProfile), SimError> {
        assert!(window_cycles > 0, "window size must be nonzero");
        let mut sim = PipelineSim::new(program, ext, config);
        let mut collector = TraceCollector { trace: Vec::new() };
        let run = sim.run(&mut collector, u64::from(u32::MAX))?;

        let mut integrator = Integrator::new(&self.base, &self.hw, ext);
        integrator.profile = Some(ProfileAcc {
            window_cycles,
            windows: Vec::new(),
        });
        integrator.integrate(&collector.trace);

        // Installed a few lines above; an empty profile is the harmless
        // degradation if that ever changes.
        let profile = match integrator.profile.take() {
            Some(p) => PowerProfile {
                window_cycles: p.window_cycles,
                windows: p.windows,
            },
            None => PowerProfile {
                window_cycles,
                windows: Vec::new(),
            },
        };
        Ok((
            EnergyReport {
                total: integrator.bd.total(),
                breakdown: integrator.bd,
                stats: run.stats,
            },
            profile,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emx_hwlib::{DfGraph, PrimOp};
    use emx_isa::asm::Assembler;
    use emx_tie::ExtensionBuilder;

    fn estimate_src(src: &str) -> EnergyReport {
        let program = Assembler::new().assemble(src).unwrap();
        let ext = ExtensionSet::empty();
        RtlEnergyEstimator::new()
            .estimate(&program, &ext, ProcConfig::default())
            .unwrap()
    }

    #[test]
    fn net_toggle_helpers_match_popcount() {
        for (a, b) in [(0u32, 0u32), (0, u32::MAX), (0x1234, 0x4321), (7, 8)] {
            assert_eq!(net_toggles32(a, b), f64::from((a ^ b).count_ones()));
        }
        assert_eq!(net_toggles64(0, u64::MAX), 64.0);
    }

    #[test]
    fn energy_is_positive_and_scales_with_work() {
        let short = estimate_src("movi a2, 1\nhalt");
        let long = estimate_src(
            "movi a2, 200\nmovi a3, 0\nl: add a3, a3, a2\naddi a2, a2, -1\nbnez a2, l\nhalt",
        );
        assert!(short.total.as_picojoules() > 0.0);
        assert!(long.total.as_picojoules() > 10.0 * short.total.as_picojoules());
    }

    #[test]
    fn breakdown_sums_to_total() {
        let rep = estimate_src("movi a2, 5\nmovi a3, 6\nmul a4, a2, a3\nhalt");
        let sum = rep.breakdown.total();
        assert!((sum.as_picojoules() - rep.total.as_picojoules()).abs() < 1e-6);
    }

    #[test]
    fn base_processor_has_no_custom_energy() {
        let rep = estimate_src("movi a2, 1\naddi a2, a2, 2\nhalt");
        assert_eq!(rep.breakdown.custom_total().as_picojoules(), 0.0);
    }

    #[test]
    fn multiplies_cost_more_than_adds() {
        let adds = estimate_src(
            "movi a2, 100\nmovi a3, 3\nmovi a4, 5\nl: add a5, a3, a4\naddi a2, a2, -1\nbnez a2, l\nhalt",
        );
        let muls = estimate_src(
            "movi a2, 100\nmovi a3, 3\nmovi a4, 5\nl: mul a5, a3, a4\naddi a2, a2, -1\nbnez a2, l\nhalt",
        );
        assert!(
            muls.breakdown.execute.as_picojoules() > adds.breakdown.execute.as_picojoules() * 1.5
        );
    }

    #[test]
    fn custom_instruction_charges_custom_blocks() {
        let mut ext = ExtensionBuilder::new("demo");
        let mut g = DfGraph::new();
        let a = g.input("a", 32);
        let b = g.input("b", 32);
        let m = g.node(PrimOp::Mul, 32, &[a, b]).unwrap();
        g.output(m);
        ext.instruction("cmul", g)
            .unwrap()
            .bind_input(emx_tie::InputBind::GprS)
            .unwrap()
            .bind_input(emx_tie::InputBind::GprT)
            .unwrap()
            .bind_output(emx_tie::OutputBind::Gpr)
            .unwrap();
        let set = ext.build().unwrap();

        let mut asm = Assembler::new();
        set.register_mnemonics(&mut asm);
        let program = asm
            .assemble("movi a2, 123\nmovi a3, 77\ncmul a4, a2, a3\ncmul a5, a4, a3\nhalt")
            .unwrap();
        let rep = RtlEnergyEstimator::new()
            .estimate(&program, &set, ProcConfig::default())
            .unwrap();
        assert!(rep.breakdown.custom.as_picojoules() > 0.0);
        assert!(rep.breakdown.control.as_picojoules() > 0.0);
        assert!(rep.breakdown.leakage.as_picojoules() > 0.0);
    }

    #[test]
    fn instantiated_but_unused_extension_leaks_and_churns() {
        let mut ext = ExtensionBuilder::new("demo");
        let mut g = DfGraph::new();
        let a = g.input("a", 32);
        let n = g.node(PrimOp::Not, 32, &[a]).unwrap();
        g.output(n);
        ext.instruction("cnot", g)
            .unwrap()
            .bind_input(emx_tie::InputBind::GprS)
            .unwrap()
            .bind_output(emx_tie::OutputBind::Gpr)
            .unwrap();
        let set = ext.build().unwrap();

        // The program never uses `cnot`, but the hardware is instantiated:
        // leakage + idle datapath churn still show up.
        let mut asm = Assembler::new();
        set.register_mnemonics(&mut asm);
        let program = asm
            .assemble("movi a2, 5\nmovi a3, 9\nadd a4, a2, a3\nhalt")
            .unwrap();
        let rep = RtlEnergyEstimator::new()
            .estimate(&program, &set, ProcConfig::default())
            .unwrap();
        assert!(rep.breakdown.leakage.as_picojoules() > 0.0);
        assert!(rep.breakdown.custom.as_picojoules() > 0.0); // idle churn
        assert_eq!(rep.breakdown.control.as_picojoules(), 0.0); // never decoded
    }

    #[test]
    fn data_dependent_energy() {
        // Same instruction counts, different data activity.
        let quiet = estimate_src(
            "movi a2, 0\nmovi a3, 0\nmovi a4, 100\nl: xor a5, a2, a3\naddi a4, a4, -1\nbnez a4, l\nhalt",
        );
        let noisy = estimate_src(
            "movi a2, 0xffffffff\nmovi a3, 0x55555555\nmovi a4, 100\nl: xor a5, a2, a3\nxor a5, a5, a2\naddi a4, a4, -1\nbnez a4, l\nhalt",
        );
        let q = quiet.total.as_picojoules() / quiet.stats.total_cycles as f64;
        let n = noisy.total.as_picojoules() / noisy.stats.total_cycles as f64;
        assert!(n > q, "noisy {n} vs quiet {q}");
    }

    #[test]
    fn power_profile_accounts_for_all_energy() {
        let program = Assembler::new()
            .assemble(
                "movi a2, 300\nmovi a3, 7\nl:\nmul a4, a3, a3\nadd a5, a4, a3\n\
                 addi a2, a2, -1\nbnez a2, l\nhalt",
            )
            .unwrap();
        let ext = ExtensionSet::empty();
        let (report, profile) = RtlEnergyEstimator::new()
            .estimate_profiled(&program, &ext, ProcConfig::default(), 100)
            .unwrap();
        let window_sum: f64 = profile.windows().iter().map(|e| e.as_picojoules()).sum();
        assert!(
            (window_sum - report.total.as_picojoules()).abs() < 1e-6,
            "profile must conserve energy"
        );
        assert_eq!(profile.window_cycles(), 100);
        assert!(profile.peak_power_mw(187.0) >= profile.average_power_mw(187.0));
        assert!(profile.average_power_mw(187.0) > 10.0);
    }

    #[test]
    fn power_profile_shows_phases() {
        // A multiplier-heavy phase followed by a nop-ish phase: the first
        // windows must be hotter than the last.
        let program = Assembler::new()
            .assemble(
                "movi a2, 200\nhot:\nmul a4, a2, a2\nmul a5, a4, a2\naddi a2, a2, -1\nbnez a2, hot\n\
                 movi a2, 200\ncool:\nnop\nnop\naddi a2, a2, -1\nbnez a2, cool\nhalt",
            )
            .unwrap();
        let ext = ExtensionSet::empty();
        let (_, profile) = RtlEnergyEstimator::new()
            .estimate_profiled(&program, &ext, ProcConfig::default(), 128)
            .unwrap();
        let w = profile.windows();
        assert!(w.len() > 4);
        let first = w[1].as_picojoules();
        let last = w[w.len() - 2].as_picojoules();
        assert!(first > 1.15 * last, "hot {first} vs cool {last}");
    }

    #[test]
    fn traced_estimation_matches_untraced_and_records_phases() {
        let program = Assembler::new()
            .assemble("movi a2, 50\nl: addi a2, a2, -1\nbnez a2, l\nhalt")
            .unwrap();
        let ext = ExtensionSet::empty();
        let est = RtlEnergyEstimator::new();

        let plain = est.estimate(&program, &ext, ProcConfig::default()).unwrap();
        let mut obs = Collector::new();
        let traced = est
            .estimate_traced(
                &program,
                &ext,
                ProcConfig::default(),
                u64::from(u32::MAX),
                &mut obs,
            )
            .unwrap();

        // Instrumentation must not change the estimate.
        assert_eq!(plain.total, traced.total);
        assert_eq!(plain.stats, traced.stats);

        let spans = obs.spans();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["rtl-activity-trace", "rtl-energy-integration"]);
        assert_eq!(
            obs.counter("rtl.trace_records"),
            plain.stats.inst_count as f64
        );
        assert!(obs.counter("rtl.energy_pj") > 0.0);
    }

    #[test]
    fn profile_exports_counter_series() {
        let program = Assembler::new()
            .assemble("movi a2, 100\nl: mul a3, a2, a2\naddi a2, a2, -1\nbnez a2, l\nhalt")
            .unwrap();
        let ext = ExtensionSet::empty();
        let (_, profile) = RtlEnergyEstimator::new()
            .estimate_profiled(&program, &ext, ProcConfig::default(), 64)
            .unwrap();
        let mut obs = Collector::new();
        profile.export_to(&mut obs);
        let samples: Vec<u64> = obs
            .events()
            .iter()
            .filter(|e| e.name == "rtl.window_energy_pj")
            .map(|e| e.ts)
            .collect();
        assert_eq!(samples.len(), profile.windows().len());
        assert!(samples.windows(2).all(|w| w[1] == w[0] + 64));
    }

    #[test]
    fn cache_misses_add_energy() {
        let misses = estimate_src(
            "movi a2, 0x40000\nmovi a3, 512\nl: l32i a4, 0(a2)\naddi a2, a2, 128\naddi a3, a3, -1\nbnez a3, l\nhalt",
        );
        let hits = estimate_src(
            "movi a2, 0x40000\nmovi a3, 512\nl: l32i a4, 0(a2)\naddi a3, a3, -1\nbnez a3, l\nhalt",
        );
        assert!(misses.stats.dcache_misses > 400);
        assert!(hits.stats.dcache_misses < 4);
        assert!(misses.breakdown.dmem.as_picojoules() > 2.0 * hits.breakdown.dmem.as_picojoules());
    }
}
