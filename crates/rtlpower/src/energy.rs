use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An amount of energy, stored in picojoules.
///
/// Newtype so that joule-scale quantities cannot be confused with cycle
/// counts or coefficients. Applications in the paper's Table II are
/// reported in microjoules; use [`Energy::as_microjoules`] for display.
///
/// # Example
///
/// ```
/// use emx_rtlpower::Energy;
///
/// let e = Energy::from_picojoules(2_500_000.0);
/// assert!((e.as_microjoules() - 2.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from picojoules.
    pub fn from_picojoules(pj: f64) -> Self {
        Energy(pj)
    }

    /// Creates an energy from microjoules.
    pub fn from_microjoules(uj: f64) -> Self {
        Energy(uj * 1.0e6)
    }

    /// The value in picojoules.
    pub fn as_picojoules(self) -> f64 {
        self.0
    }

    /// The value in microjoules.
    pub fn as_microjoules(self) -> f64 {
        self.0 * 1.0e-6
    }

    /// Average power in milliwatts given a cycle count and clock frequency.
    ///
    /// Returns 0 for a zero-cycle run.
    pub fn average_power_mw(self, cycles: u64, clock_mhz: f64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        // pJ / (cycles / f) → pJ·MHz/cycles = µW·1e-... : 1 pJ × 1 MHz = 1 µW.
        let microwatts = self.0 * clock_mhz / cycles as f64;
        microwatts / 1000.0
    }

    /// Signed relative difference versus a reference, in percent.
    pub fn percent_error_vs(self, reference: Energy) -> f64 {
        if reference.0 == 0.0 {
            return 0.0;
        }
        (self.0 - reference.0) / reference.0 * 100.0
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Div<f64> for Energy {
    type Output = Energy;
    fn div(self, rhs: f64) -> Energy {
        Energy(self.0 / rhs)
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        Energy(iter.map(|e| e.0).sum())
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1.0e6 {
            write!(f, "{:.2} µJ", self.as_microjoules())
        } else if self.0.abs() >= 1.0e3 {
            write!(f, "{:.2} nJ", self.0 * 1e-3)
        } else {
            write!(f, "{:.2} pJ", self.0)
        }
    }
}

/// Per-block decomposition of a processor's energy, as an RTL power tool
/// would report it.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Clock tree and pipeline registers.
    pub clock: Energy,
    /// Instruction fetch, I-cache arrays, miss fills, uncached fetches.
    pub fetch: Energy,
    /// Instruction decoder.
    pub decode: Energy,
    /// Register-file read/write ports.
    pub regfile: Energy,
    /// Operand and result bus switching.
    pub buses: Energy,
    /// EX-stage functional units (adder, logic, shifter, multiplier).
    pub execute: Energy,
    /// D-cache accesses, misses, write-backs, uncached data.
    pub dmem: Energy,
    /// Stall and flush cycles (pipeline-hold overhead beyond the clock).
    pub stall: Energy,
    /// Custom-hardware datapath activity (all ten library categories).
    pub custom: Energy,
    /// Auto-generated TIE decoder/bypass/interlock control logic.
    pub control: Energy,
    /// Leakage of instantiated custom hardware.
    pub leakage: Energy,
}

impl EnergyBreakdown {
    /// Sum of all components.
    pub fn total(&self) -> Energy {
        self.clock
            + self.fetch
            + self.decode
            + self.regfile
            + self.buses
            + self.execute
            + self.dmem
            + self.stall
            + self.custom
            + self.control
            + self.leakage
    }

    /// Energy attributable to the custom extension (datapath + control +
    /// leakage).
    pub fn custom_total(&self) -> Energy {
        self.custom + self.control + self.leakage
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "clock:    {}", self.clock)?;
        writeln!(f, "fetch:    {}", self.fetch)?;
        writeln!(f, "decode:   {}", self.decode)?;
        writeln!(f, "regfile:  {}", self.regfile)?;
        writeln!(f, "buses:    {}", self.buses)?;
        writeln!(f, "execute:  {}", self.execute)?;
        writeln!(f, "dmem:     {}", self.dmem)?;
        writeln!(f, "stall:    {}", self.stall)?;
        writeln!(f, "custom:   {}", self.custom)?;
        writeln!(f, "control:  {}", self.control)?;
        writeln!(f, "leakage:  {}", self.leakage)?;
        write!(f, "total:    {}", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        let e = Energy::from_microjoules(1.5);
        assert_eq!(e.as_picojoules(), 1.5e6);
        assert_eq!(Energy::from_picojoules(250.0).as_picojoules(), 250.0);
    }

    #[test]
    fn arithmetic() {
        let a = Energy::from_picojoules(100.0);
        let b = Energy::from_picojoules(50.0);
        assert_eq!((a + b).as_picojoules(), 150.0);
        assert_eq!((a - b).as_picojoules(), 50.0);
        assert_eq!((a * 2.0).as_picojoules(), 200.0);
        assert_eq!((a / 2.0).as_picojoules(), 50.0);
        let mut c = a;
        c += b;
        assert_eq!(c.as_picojoules(), 150.0);
        let s: Energy = [a, b].into_iter().sum();
        assert_eq!(s.as_picojoules(), 150.0);
    }

    #[test]
    fn power_conversion() {
        // 1 pJ per cycle at 187 MHz = 0.187 mW.
        let e = Energy::from_picojoules(1000.0);
        let mw = e.average_power_mw(1000, 187.0);
        assert!((mw - 0.187).abs() < 1e-12);
        assert_eq!(Energy::ZERO.average_power_mw(0, 187.0), 0.0);
    }

    #[test]
    fn percent_error() {
        let est = Energy::from_picojoules(103.0);
        let truth = Energy::from_picojoules(100.0);
        assert!((est.percent_error_vs(truth) - 3.0).abs() < 1e-12);
        assert_eq!(est.percent_error_vs(Energy::ZERO), 0.0);
    }

    #[test]
    fn breakdown_total_sums_components() {
        let b = EnergyBreakdown {
            clock: Energy::from_picojoules(1.0),
            custom: Energy::from_picojoules(2.0),
            leakage: Energy::from_picojoules(3.0),
            ..Default::default()
        };
        assert_eq!(b.total().as_picojoules(), 6.0);
        assert_eq!(b.custom_total().as_picojoules(), 5.0);
    }

    #[test]
    fn display_scales_units() {
        assert!(Energy::from_picojoules(12.0).to_string().contains("pJ"));
        assert!(Energy::from_picojoules(1.2e4).to_string().contains("nJ"));
        assert!(Energy::from_picojoules(2.5e6).to_string().contains("µJ"));
    }
}
