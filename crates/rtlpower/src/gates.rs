//! Structural (net-level) models of the base EX-stage datapath.
//!
//! A synthesized in-order core has no operand isolation between its
//! functional units: the adder, the logic unit, the barrel shifter and
//! the multiplier array are all wired to the operand buses, and all of
//! their internal nets switch whenever the operands change, whichever
//! unit's result the EX mux finally selects. An RTL power tool charges
//! every one of those nets. This module reproduces that: each unit is
//! evaluated bit-by-bit, its internal net vector is compared against the
//! previous cycle's, and the toggle count feeds the energy integration.
//!
//! The unit models are textbook structures:
//!
//! * [`AdderNets`] — 32-bit ripple carry (generate / propagate / carry /
//!   sum nets),
//! * [`LogicNets`] — AND / OR / XOR planes,
//! * [`ShifterNets`] — 5-stage barrel shifter (one 32-bit mux stage per
//!   shift-amount bit),
//! * [`MultiplierNets`] — 32×32 partial-product array with row
//!   accumulation (the dominant net count, as in real silicon).

/// Tracks the previous values of a block of 32-bit net words and counts
/// toggles net by net.
#[derive(Debug, Clone)]
pub struct NetState {
    prev: Vec<u32>,
}

impl NetState {
    /// Creates an all-zero net state for `words` × 32 nets.
    pub fn new(words: usize) -> Self {
        NetState {
            prev: vec![0; words],
        }
    }

    /// Number of 32-bit net words tracked.
    pub fn words(&self) -> usize {
        self.prev.len()
    }

    /// Compares the new net values against the stored ones, walks every
    /// net, stores the new values and returns the number of toggled nets.
    ///
    /// # Panics
    ///
    /// Panics if `new.len()` differs from the tracked word count.
    pub fn update(&mut self, new: &[u32]) -> u32 {
        assert_eq!(new.len(), self.prev.len(), "net word count mismatch");
        let mut toggles = 0u32;
        for (p, &n) in self.prev.iter_mut().zip(new) {
            let x = *p ^ n;
            // Per-net walk: this is the granularity an RTL power tool
            // pays for (deliberately not count_ones).
            for bit in 0..32 {
                toggles += (x >> bit) & 1;
            }
            *p = n;
        }
        toggles
    }
}

/// 32-bit ripple-carry adder nets: generate, propagate, carry and sum
/// vectors (4 words, 128 nets).
#[derive(Debug, Clone, Default)]
pub struct AdderNets;

impl AdderNets {
    /// Number of 32-bit net words the unit produces.
    pub const WORDS: usize = 4;

    /// Evaluates the adder on `(a, b)`, writing its nets into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != Self::WORDS`.
    pub fn eval(a: u32, b: u32, out: &mut [u32]) {
        assert_eq!(out.len(), Self::WORDS);
        let g = a & b;
        let p = a ^ b;
        let mut carry = 0u32;
        let mut c_in = 0u32;
        for bit in 0..32 {
            let gi = (g >> bit) & 1;
            let pi = (p >> bit) & 1;
            let ci = gi | (pi & c_in);
            carry |= ci << bit;
            c_in = ci;
        }
        let sum = p ^ (carry << 1);
        out[0] = g;
        out[1] = p;
        out[2] = carry;
        out[3] = sum;
    }
}

/// Logic-unit nets: the AND, OR and XOR planes (3 words, 96 nets).
#[derive(Debug, Clone, Default)]
pub struct LogicNets;

impl LogicNets {
    /// Number of 32-bit net words the unit produces.
    pub const WORDS: usize = 3;

    /// Evaluates the logic planes on `(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != Self::WORDS`.
    pub fn eval(a: u32, b: u32, out: &mut [u32]) {
        assert_eq!(out.len(), Self::WORDS);
        out[0] = a & b;
        out[1] = a | b;
        out[2] = a ^ b;
    }
}

/// Barrel-shifter nets: five 32-bit mux stages, one per shift-amount bit
/// (5 words, 160 nets).
#[derive(Debug, Clone, Default)]
pub struct ShifterNets;

impl ShifterNets {
    /// Number of 32-bit net words the unit produces.
    pub const WORDS: usize = 5;

    /// Evaluates the barrel stages for a logical right shift of `a` by
    /// `sh & 31`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != Self::WORDS`.
    pub fn eval(a: u32, sh: u32, out: &mut [u32]) {
        assert_eq!(out.len(), Self::WORDS);
        let mut v = a;
        for (stage, slot) in out.iter_mut().enumerate() {
            if (sh >> stage) & 1 == 1 {
                v >>= 1 << stage;
            }
            *slot = v;
        }
    }
}

/// 32×32 multiplier-array nets: the AND partial-product rows plus the
/// running row accumulations (64 words, 2048 nets) — by far the largest
/// block, as in real silicon.
#[derive(Debug, Clone, Default)]
pub struct MultiplierNets;

impl MultiplierNets {
    /// Number of 32-bit net words the unit produces.
    pub const WORDS: usize = 64;

    /// Evaluates the partial-product array for `a × b`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != Self::WORDS`.
    pub fn eval(a: u32, b: u32, out: &mut [u32]) {
        assert_eq!(out.len(), Self::WORDS);
        let mut acc = 0u32;
        for row in 0..32 {
            // Partial product row: a AND-ed with bit `row` of b …
            let pp = if (b >> row) & 1 == 1 { a } else { 0 };
            out[row] = pp;
            // … and the running accumulation (low word of the array sums).
            acc = acc.wrapping_add(pp << row);
            out[32 + row] = acc;
        }
    }
}

/// The complete EX-stage net bundle evaluated on every instruction.
#[derive(Debug, Clone)]
pub struct ExStageNets {
    adder: NetState,
    logic: NetState,
    shifter: NetState,
    multiplier: NetState,
    scratch: Vec<u32>,
}

/// Per-unit toggle counts from one EX-stage evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExToggles {
    /// Ripple-adder net toggles.
    pub adder: u32,
    /// Logic-plane net toggles.
    pub logic: u32,
    /// Barrel-shifter net toggles.
    pub shifter: u32,
    /// Multiplier-array net toggles.
    pub multiplier: u32,
}

impl ExToggles {
    /// Sum of all unit toggles.
    pub fn total(&self) -> u32 {
        self.adder + self.logic + self.shifter + self.multiplier
    }
}

impl ExStageNets {
    /// Creates zeroed net state for the whole EX stage.
    pub fn new() -> Self {
        ExStageNets {
            adder: NetState::new(AdderNets::WORDS),
            logic: NetState::new(LogicNets::WORDS),
            shifter: NetState::new(ShifterNets::WORDS),
            multiplier: NetState::new(MultiplierNets::WORDS),
            scratch: vec![0; MultiplierNets::WORDS],
        }
    }

    /// Drives the operand buses into every EX unit (none of them are
    /// operand-isolated) and returns the per-unit net toggle counts.
    pub fn drive(&mut self, a: u32, b: u32) -> ExToggles {
        let mut t = ExToggles::default();
        AdderNets::eval(a, b, &mut self.scratch[..AdderNets::WORDS]);
        t.adder = self.adder.update(&self.scratch[..AdderNets::WORDS]);
        LogicNets::eval(a, b, &mut self.scratch[..LogicNets::WORDS]);
        t.logic = self.logic.update(&self.scratch[..LogicNets::WORDS]);
        ShifterNets::eval(a, b, &mut self.scratch[..ShifterNets::WORDS]);
        t.shifter = self.shifter.update(&self.scratch[..ShifterNets::WORDS]);
        MultiplierNets::eval(a, b, &mut self.scratch[..MultiplierNets::WORDS]);
        t.multiplier = self
            .multiplier
            .update(&self.scratch[..MultiplierNets::WORDS]);
        t
    }
}

impl Default for ExStageNets {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_state_counts_toggles() {
        let mut s = NetState::new(1);
        assert_eq!(s.update(&[0b1010]), 2);
        assert_eq!(s.update(&[0b1010]), 0);
        assert_eq!(s.update(&[0b0101]), 4);
        assert_eq!(s.words(), 1);
    }

    #[test]
    fn adder_sum_net_is_correct() {
        let mut out = [0u32; AdderNets::WORDS];
        for (a, b) in [(0u32, 0u32), (1, 1), (0xffff_ffff, 1), (12345, 67890)] {
            AdderNets::eval(a, b, &mut out);
            assert_eq!(out[3], a.wrapping_add(b), "{a}+{b}");
        }
    }

    #[test]
    fn shifter_final_stage_is_correct() {
        let mut out = [0u32; ShifterNets::WORDS];
        for (a, sh) in [(0x8000_0000u32, 31u32), (0xffff, 4), (7, 0)] {
            ShifterNets::eval(a, sh, &mut out);
            assert_eq!(out[4], a >> (sh & 31), "{a}>>{sh}");
        }
    }

    #[test]
    fn multiplier_accumulation_is_correct() {
        let mut out = [0u32; MultiplierNets::WORDS];
        for (a, b) in [(3u32, 5u32), (0xffff, 0xffff), (12345, 678)] {
            MultiplierNets::eval(a, b, &mut out);
            assert_eq!(out[63], a.wrapping_mul(b), "{a}*{b}");
        }
    }

    #[test]
    fn ex_stage_toggles_reflect_data_activity() {
        let mut ex = ExStageNets::new();
        ex.drive(0, 0);
        let quiet = ex.drive(0, 0);
        assert_eq!(quiet.total(), 0);
        let noisy = ex.drive(0xffff_ffff, 0x5555_5555);
        assert!(noisy.multiplier > noisy.adder);
        assert!(noisy.total() > 500, "total = {}", noisy.total());
        // Same operands again: everything settles.
        assert_eq!(ex.drive(0xffff_ffff, 0x5555_5555).total(), 0);
    }
}
