//! Property-based tests for the regression kernel.

use proptest::prelude::*;

use emx_regress::solve::{cholesky_solve, normal_equations_lstsq, qr_lstsq};
use emx_regress::Matrix;

/// Strategy: a well-conditioned tall design matrix plus true coefficients.
fn tall_system() -> impl Strategy<Value = (Matrix, Vec<f64>)> {
    (3usize..8, 1usize..4).prop_flat_map(|(rows, cols)| {
        let cols = cols.min(rows - 1).max(1);
        (
            proptest::collection::vec(-100.0f64..100.0, rows * cols),
            Just((rows, cols)),
        )
            .prop_map(|(data, (rows, cols))| {
                // Add a strong diagonal so columns are independent with
                // probability ~1.

                Matrix::from_fn(rows, cols, |i, j| {
                    let v = data[i * cols + j];
                    if i == j {
                        v + 500.0
                    } else {
                        v
                    }
                })
            })
            .prop_flat_map(|m| {
                let cols = m.cols();
                (Just(m), proptest::collection::vec(-10.0f64..10.0, cols))
            })
    })
}

proptest! {
    #[test]
    fn qr_recovers_consistent_systems((x, c_true) in tall_system()) {
        let y = x.mul_vec(&c_true).expect("shapes match");
        let c = qr_lstsq(&x, &y).expect("well-conditioned");
        for (a, b) in c.iter().zip(&c_true) {
            prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn residual_is_orthogonal_to_columns((x, c_true) in tall_system(),
                                         noise in proptest::collection::vec(-1.0f64..1.0, 8)) {
        let mut y = x.mul_vec(&c_true).expect("shapes match");
        for (v, n) in y.iter_mut().zip(&noise) {
            *v += n;
        }
        let c = qr_lstsq(&x, &y).expect("well-conditioned");
        let fitted = x.mul_vec(&c).expect("shapes match");
        let resid: Vec<f64> = y.iter().zip(&fitted).map(|(a, b)| a - b).collect();
        let xtres = x.transpose_mul_vec(&resid).expect("shapes match");
        for v in xtres {
            prop_assert!(v.abs() < 1e-6, "normal equations violated: {v}");
        }
    }

    #[test]
    fn qr_matches_pseudo_inverse((x, c_true) in tall_system(),
                                 noise in proptest::collection::vec(-1.0f64..1.0, 8)) {
        let mut y = x.mul_vec(&c_true).expect("shapes match");
        for (v, n) in y.iter_mut().zip(&noise) {
            *v += n;
        }
        let a = qr_lstsq(&x, &y).expect("solves");
        let b = normal_equations_lstsq(&x, &y, 0.0).expect("solves");
        for (p, q) in a.iter().zip(&b) {
            prop_assert!((p - q).abs() < 1e-5, "{p} vs {q}");
        }
    }

    #[test]
    fn cholesky_solves_spd(vals in proptest::collection::vec(-10.0f64..10.0, 9),
                           rhs in proptest::collection::vec(-10.0f64..10.0, 3)) {
        // Build SPD as AᵀA + I.
        let a = Matrix::from_fn(3, 3, |i, j| vals[i * 3 + j]);
        let mut spd = a.gram();
        for i in 0..3 {
            spd[(i, i)] += 1.0;
        }
        let x = cholesky_solve(&spd, &rhs).expect("SPD by construction");
        let back = spd.mul_vec(&x).expect("shapes match");
        for (b, r) in back.iter().zip(&rhs) {
            prop_assert!((b - r).abs() < 1e-7, "{b} vs {r}");
        }
    }

    #[test]
    fn transpose_is_an_involution(vals in proptest::collection::vec(-100.0f64..100.0, 12)) {
        let m = Matrix::from_fn(3, 4, |i, j| vals[i * 4 + j]);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn product_transpose_identity(a_vals in proptest::collection::vec(-10.0f64..10.0, 6),
                                  b_vals in proptest::collection::vec(-10.0f64..10.0, 6)) {
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let a = Matrix::from_fn(2, 3, |i, j| a_vals[i * 3 + j]);
        let b = Matrix::from_fn(3, 2, |i, j| b_vals[i * 2 + j]);
        let lhs = a.mul(&b).expect("shapes").transpose();
        let rhs = b.transpose().mul(&a.transpose()).expect("shapes");
        for i in 0..2 {
            for j in 0..2 {
                prop_assert!((lhs[(i, j)] - rhs[(i, j)]).abs() < 1e-9);
            }
        }
    }
}
