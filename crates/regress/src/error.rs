use std::error::Error;
use std::fmt;

/// Errors produced by the regression engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RegressError {
    /// Two matrices (or a matrix and a vector) had incompatible shapes.
    ///
    /// Carries a human-readable description of the operation and the two
    /// offending shapes as `(rows, cols)` pairs.
    ShapeMismatch {
        /// The operation that was attempted (e.g. `"mul"`).
        op: &'static str,
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
    },
    /// The system is singular or numerically rank-deficient and cannot be
    /// solved with the requested method.
    Singular,
    /// A dataset operation referenced an unknown variable name.
    UnknownVariable(String),
    /// The dataset has fewer samples than model variables, so the
    /// least-squares problem is under-determined.
    Underdetermined {
        /// Number of observations available.
        samples: usize,
        /// Number of model variables to fit.
        variables: usize,
    },
    /// A sample row had the wrong number of entries for the dataset.
    SampleWidth {
        /// Number of values supplied.
        got: usize,
        /// Number of variables in the dataset.
        expected: usize,
    },
    /// A non-finite value (NaN or infinity) was encountered in the inputs.
    NonFinite,
}

impl fmt::Display for RegressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegressError::ShapeMismatch { op, left, right } => write!(
                f,
                "shape mismatch in {op}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            RegressError::Singular => write!(f, "matrix is singular or rank-deficient"),
            RegressError::UnknownVariable(name) => write!(f, "unknown variable `{name}`"),
            RegressError::Underdetermined { samples, variables } => write!(
                f,
                "underdetermined system: {samples} samples for {variables} variables"
            ),
            RegressError::SampleWidth { got, expected } => write!(
                f,
                "sample has {got} values but the dataset has {expected} variables"
            ),
            RegressError::NonFinite => write!(f, "non-finite value in regression input"),
        }
    }
}

impl Error for RegressError {}
