use std::fmt;
use std::ops::{Index, IndexMut};

use crate::RegressError;

/// A dense, row-major matrix of `f64` values.
///
/// This is deliberately a small, dependency-free kernel: the regression
/// problems in the energy-characterization flow are tiny (tens of samples by
/// ~21 variables), so clarity and correctness win over BLAS-grade speed.
///
/// # Example
///
/// ```
/// use emx_regress::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = a.transpose();
/// assert_eq!(b[(0, 1)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let Some(len) = rows.checked_mul(cols) else {
            panic!("matrix size overflow: {rows} x {cols}")
        };
        Matrix {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows are not all the same length.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a single-column matrix from a vector of values.
    pub fn column(values: &[f64]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as a `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index {j} out of bounds");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the underlying data in row-major order.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`RegressError::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn mul(&self, rhs: &Matrix) -> Result<Matrix, RegressError> {
        if self.cols != rhs.rows {
            return Err(RegressError::ShapeMismatch {
                op: "mul",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += aik * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Errors
    ///
    /// Returns [`RegressError::ShapeMismatch`] if `self.cols() != v.len()`.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>, RegressError> {
        if self.cols != v.len() {
            return Err(RegressError::ShapeMismatch {
                op: "mul_vec",
                left: self.shape(),
                right: (v.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Computes `selfᵀ · self` (the Gram matrix of the columns).
    ///
    /// This is the `XᵀX` of the normal equations; it is symmetric positive
    /// semi-definite by construction.
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in i..self.cols {
                let mut s = 0.0;
                for k in 0..self.rows {
                    s += self[(k, i)] * self[(k, j)];
                }
                out[(i, j)] = s;
                out[(j, i)] = s;
            }
        }
        out
    }

    /// Computes `selfᵀ · v`.
    ///
    /// # Errors
    ///
    /// Returns [`RegressError::ShapeMismatch`] if `self.rows() != v.len()`.
    pub fn transpose_mul_vec(&self, v: &[f64]) -> Result<Vec<f64>, RegressError> {
        if self.rows != v.len() {
            return Err(RegressError::ShapeMismatch {
                op: "transpose_mul_vec",
                left: (self.cols, self.rows),
                right: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (k, &vk) in v.iter().enumerate() {
            let row = self.row(k);
            for (o, a) in out.iter_mut().zip(row) {
                *o += a * vk;
            }
        }
        Ok(out)
    }

    /// Frobenius norm (square root of the sum of squared entries).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>12.6}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(1, 1)], 1.0);
        assert_eq!(i[(0, 2)], 0.0);
    }

    #[test]
    fn from_rows_and_index() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn mul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.mul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn mul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.mul(&b),
            Err(RegressError::ShapeMismatch { op: "mul", .. })
        ));
    }

    #[test]
    fn identity_is_mul_neutral() {
        let a = Matrix::from_rows(&[&[1.5, -2.0], &[0.25, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.mul(&i).unwrap(), a);
        assert_eq!(i.mul(&a).unwrap(), a);
    }

    #[test]
    fn gram_matches_explicit_transpose_mul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = a.gram();
        let explicit = a.transpose().mul(&a).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((g[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn mul_vec_and_transpose_mul_vec() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.mul_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0, 11.0]);
        assert_eq!(
            a.transpose_mul_vec(&[1.0, 1.0, 1.0]).unwrap(),
            vec![9.0, 12.0]
        );
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn column_constructor() {
        let c = Matrix::column(&[1.0, 2.0, 3.0]);
        assert_eq!(c.shape(), (3, 1));
        assert_eq!(c[(2, 0)], 3.0);
    }
}
