//! Small statistical helpers used by the evaluation harness.
//!
//! These back the summary numbers the paper reports: mean absolute error
//! and maximum error (Table II), RMS fitting error (Fig. 3), and rank
//! agreement between two energy profiles (the relative-accuracy study of
//! Fig. 4).

/// Arithmetic mean; `0.0` for an empty slice.
///
/// # Example
///
/// ```
/// assert_eq!(emx_regress::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Root mean square; `0.0` for an empty slice.
pub fn rms(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v * v).sum::<f64>() / values.len() as f64).sqrt()
}

/// Mean of absolute values; `0.0` for an empty slice.
pub fn mean_abs(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().map(|v| v.abs()).sum::<f64>() / values.len() as f64
}

/// Maximum absolute value; `0.0` for an empty slice.
pub fn max_abs(values: &[f64]) -> f64 {
    values.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// Coefficient of determination R² of `predicted` against `observed`.
///
/// `1 − SS_res/SS_tot`, the out-of-sample analogue of
/// [`LinearFit::r_squared`](crate::LinearFit::r_squared): unlike the
/// in-fit statistic it can go negative (predictions worse than the mean).
/// Returns `1.0` when the observations have no variance and the
/// predictions match them exactly, `0.0` when they have no variance and
/// the predictions do not, and `0.0` for empty slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn r_squared(observed: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(
        observed.len(),
        predicted.len(),
        "observed/predicted length mismatch"
    );
    if observed.is_empty() {
        return 0.0;
    }
    let mean_y = mean(observed);
    let ss_tot: f64 = observed.iter().map(|v| (v - mean_y).powi(2)).sum();
    let ss_res: f64 = observed
        .iter()
        .zip(predicted)
        .map(|(o, p)| (o - p).powi(2))
        .sum();
    if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else if ss_res == 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Fractional ranks of the values (average rank for ties), 1-based.
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // Average rank across the tie group (1-based).
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns `0.0` when either sample has zero variance or the slices are
/// empty.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson requires equal lengths");
    if a.is_empty() {
        return 0.0;
    }
    let ma = mean(a);
    let mb = mean(b);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Spearman rank correlation of two equal-length samples.
///
/// This is the statistic behind the "good relative accuracy" claim: two
/// energy profiles that *track* each other across design points have a rank
/// correlation near 1 even when their absolute values differ.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// use emx_regress::stats::spearman;
///
/// // Perfectly monotone relation → ρ = 1.
/// assert!((spearman(&[1.0, 2.0, 3.0], &[10.0, 20.0, 35.0]) - 1.0).abs() < 1e-12);
/// ```
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "spearman requires equal lengths");
    pearson(&ranks(a), &ranks(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r_squared_of_predictions() {
        let obs = [1.0, 2.0, 3.0, 4.0];
        assert!((r_squared(&obs, &obs) - 1.0).abs() < 1e-12);
        // Predicting the mean everywhere scores exactly zero.
        assert!(r_squared(&obs, &[2.5; 4]).abs() < 1e-12);
        // Worse than the mean goes negative.
        assert!(r_squared(&obs, &[4.0, 3.0, 2.0, 1.0]) < 0.0);
        // Degenerate cases.
        assert_eq!(r_squared(&[], &[]), 0.0);
        assert_eq!(r_squared(&[5.0, 5.0], &[5.0, 5.0]), 1.0);
        assert_eq!(r_squared(&[5.0, 5.0], &[5.0, 6.0]), 0.0);
    }

    #[test]
    fn mean_rms_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert!((rms(&[3.0, 4.0]) - (12.5_f64).sqrt()).abs() < 1e-12);
        assert_eq!(rms(&[]), 0.0);
    }

    #[test]
    fn abs_summaries() {
        assert_eq!(mean_abs(&[-1.0, 3.0]), 2.0);
        assert_eq!(max_abs(&[-5.0, 3.0]), 5.0);
        assert_eq!(max_abs(&[]), 0.0);
    }

    #[test]
    fn pearson_perfect_and_anti() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn spearman_is_rank_based() {
        // Monotone but non-linear: pearson < 1, spearman = 1.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.0, 10.0, 100.0, 1000.0];
        assert!(pearson(&a, &b) < 1.0);
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_reversal() {
        let a = [1.0, 2.0, 3.0];
        let b = [9.0, 5.0, 1.0];
        assert!((spearman(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 10.0]), vec![1.5, 3.0, 1.5]);
    }
}
