//! Direct solvers used by the regression engine.
//!
//! Two factorizations are provided:
//!
//! * [`cholesky_solve`] — solves symmetric positive-definite systems; used on
//!   the normal equations `XᵀX · c = XᵀE`, which is the paper's
//!   pseudo-inverse method (Eq. 5),
//! * [`qr_lstsq`] — Householder QR applied directly to the design matrix,
//!   which avoids squaring the condition number and is the default.

use crate::{Matrix, RegressError};

/// Solves `A·x = b` for a symmetric positive-definite `A` via Cholesky
/// factorization `A = L·Lᵀ`.
///
/// # Errors
///
/// Returns [`RegressError::ShapeMismatch`] if `A` is not square or `b` has
/// the wrong length, and [`RegressError::Singular`] if a non-positive pivot
/// is encountered (the matrix is not positive definite to working
/// precision).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), emx_regress::RegressError> {
/// use emx_regress::{Matrix, solve::cholesky_solve};
///
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let x = cholesky_solve(&a, &[8.0, 7.0])?;
/// assert!((x[0] - 1.25).abs() < 1e-12);
/// assert!((x[1] - 1.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn cholesky_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, RegressError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(RegressError::ShapeMismatch {
            op: "cholesky",
            left: a.shape(),
            right: a.shape(),
        });
    }
    if b.len() != n {
        return Err(RegressError::ShapeMismatch {
            op: "cholesky_solve",
            left: a.shape(),
            right: (b.len(), 1),
        });
    }
    let l = cholesky_factor(a)?;
    // Forward substitution: L·y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for j in 0..i {
            s -= l[(i, j)] * y[j];
        }
        y[i] = s / l[(i, i)];
    }
    // Back substitution: Lᵀ·x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for j in (i + 1)..n {
            s -= l[(j, i)] * x[j];
        }
        x[i] = s / l[(i, i)];
    }
    Ok(x)
}

/// Computes the lower-triangular Cholesky factor `L` with `A = L·Lᵀ`.
///
/// # Errors
///
/// Returns [`RegressError::Singular`] if `A` is not positive definite to
/// working precision, and [`RegressError::ShapeMismatch`] if `A` is not
/// square.
pub fn cholesky_factor(a: &Matrix) -> Result<Matrix, RegressError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(RegressError::ShapeMismatch {
            op: "cholesky_factor",
            left: a.shape(),
            right: a.shape(),
        });
    }
    let mut l = Matrix::zeros(n, n);
    // Tolerance relative to the largest diagonal entry.
    let scale = (0..n).fold(0.0_f64, |m, i| m.max(a[(i, i)].abs()));
    let tol = scale.max(1.0) * 1e-13;
    for i in 0..n {
        for j in 0..=i {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if s <= tol {
                    return Err(RegressError::Singular);
                }
                l[(i, j)] = s.sqrt();
            } else {
                l[(i, j)] = s / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Solves the least-squares problem `min ‖X·c − y‖₂` via Householder QR.
///
/// Returns the coefficient vector `c` of length `X.cols()`.
///
/// # Errors
///
/// * [`RegressError::ShapeMismatch`] if `y.len() != X.rows()`,
/// * [`RegressError::Underdetermined`] if there are fewer rows than columns,
/// * [`RegressError::Singular`] if a diagonal entry of `R` is (numerically)
///   zero, i.e. the columns of `X` are linearly dependent.
pub fn qr_lstsq(x: &Matrix, y: &[f64]) -> Result<Vec<f64>, RegressError> {
    let m = x.rows();
    let n = x.cols();
    if y.len() != m {
        return Err(RegressError::ShapeMismatch {
            op: "qr_lstsq",
            left: x.shape(),
            right: (y.len(), 1),
        });
    }
    if m < n {
        return Err(RegressError::Underdetermined {
            samples: m,
            variables: n,
        });
    }
    // Work on copies; apply each Householder reflector to `r` and `rhs`.
    let mut r = x.clone();
    let mut rhs = y.to_vec();
    let scale = x.max_abs().max(1.0);
    let tol = scale * 1e-12;

    for k in 0..n {
        // Householder vector for column k, rows k..m.
        let mut norm = 0.0;
        for i in k..m {
            norm += r[(i, k)] * r[(i, k)];
        }
        let norm = norm.sqrt();
        if norm <= tol {
            return Err(RegressError::Singular);
        }
        let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
        let mut v = vec![0.0; m - k];
        v[0] = r[(k, k)] - alpha;
        for i in (k + 1)..m {
            v[i - k] = r[(i, k)];
        }
        let vtv: f64 = v.iter().map(|a| a * a).sum();
        if vtv <= tol * tol {
            // Column already triangularized; just record alpha.
            r[(k, k)] = alpha;
            continue;
        }
        // Apply H = I − 2·v·vᵀ/(vᵀv) to the trailing block of r.
        for j in k..n {
            let mut dot = 0.0;
            for i in k..m {
                dot += v[i - k] * r[(i, j)];
            }
            let f = 2.0 * dot / vtv;
            for i in k..m {
                r[(i, j)] -= f * v[i - k];
            }
        }
        // Apply to rhs.
        let mut dot = 0.0;
        for i in k..m {
            dot += v[i - k] * rhs[i];
        }
        let f = 2.0 * dot / vtv;
        for i in k..m {
            rhs[i] -= f * v[i - k];
        }
    }

    // Back substitution on the top n×n triangle.
    let mut c = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = rhs[i];
        for j in (i + 1)..n {
            s -= r[(i, j)] * c[j];
        }
        let d = r[(i, i)];
        if d.abs() <= tol {
            return Err(RegressError::Singular);
        }
        c[i] = s / d;
    }
    Ok(c)
}

/// Solves the least-squares problem by the paper's pseudo-inverse method:
/// forms the normal equations `XᵀX · c = Xᵀy` and solves them by Cholesky.
///
/// An optional ridge term `λ` adds `λ·I` to `XᵀX`, which regularizes
/// near-collinear designs (used by the ablation studies).
///
/// # Errors
///
/// Propagates shape and singularity errors from [`cholesky_solve`], plus
/// [`RegressError::Underdetermined`] when there are fewer samples than
/// variables and no ridge term.
pub fn normal_equations_lstsq(x: &Matrix, y: &[f64], ridge: f64) -> Result<Vec<f64>, RegressError> {
    if x.rows() < x.cols() && ridge == 0.0 {
        return Err(RegressError::Underdetermined {
            samples: x.rows(),
            variables: x.cols(),
        });
    }
    let mut gram = x.gram();
    if ridge > 0.0 {
        for i in 0..gram.rows() {
            gram[(i, i)] += ridge;
        }
    }
    let xty = x.transpose_mul_vec(y)?;
    cholesky_solve(&gram, &xty)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn cholesky_solves_spd_system() {
        let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]]);
        let x_true = [1.0, -2.0, 3.0];
        let b = a.mul_vec(&x_true).unwrap();
        let x = cholesky_solve(&a, &b).unwrap();
        assert_close(&x, &x_true, 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert_eq!(cholesky_solve(&a, &[1.0, 1.0]), Err(RegressError::Singular));
    }

    #[test]
    fn cholesky_factor_reconstructs() {
        let a = Matrix::from_rows(&[
            &[4.0, 12.0, -16.0],
            &[12.0, 37.0, -43.0],
            &[-16.0, -43.0, 98.0],
        ]);
        let l = cholesky_factor(&a).unwrap();
        let llt = l.mul(&l.transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((llt[(i, j)] - a[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn qr_recovers_exact_coefficients() {
        // y = 3·x0 − 2·x1 + 0.5·x2 over a tall random-ish design.
        let x = Matrix::from_rows(&[
            &[1.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0],
            &[0.0, 0.0, 1.0],
            &[1.0, 1.0, 1.0],
            &[2.0, -1.0, 0.5],
            &[0.3, 0.7, -1.2],
        ]);
        let c_true = [3.0, -2.0, 0.5];
        let y = x.mul_vec(&c_true).unwrap();
        let c = qr_lstsq(&x, &y).unwrap();
        assert_close(&c, &c_true, 1e-10);
    }

    #[test]
    fn qr_and_normal_equations_agree() {
        let x = Matrix::from_rows(&[
            &[1.0, 2.0],
            &[2.0, 1.0],
            &[3.0, 4.0],
            &[1.0, -1.0],
            &[0.5, 0.25],
        ]);
        // Inconsistent system: least-squares answer, not exact.
        let y = [1.0, 2.0, 3.0, 0.0, 0.7];
        let c1 = qr_lstsq(&x, &y).unwrap();
        let c2 = normal_equations_lstsq(&x, &y, 0.0).unwrap();
        assert_close(&c1, &c2, 1e-9);
    }

    #[test]
    fn qr_detects_collinearity() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        assert_eq!(qr_lstsq(&x, &[1.0, 2.0, 3.0]), Err(RegressError::Singular));
    }

    #[test]
    fn qr_rejects_underdetermined() {
        let x = Matrix::zeros(2, 3);
        assert!(matches!(
            qr_lstsq(&x, &[0.0, 0.0]),
            Err(RegressError::Underdetermined {
                samples: 2,
                variables: 3
            })
        ));
    }

    #[test]
    fn ridge_regularizes_collinear_design() {
        let x = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let y = [2.0, 4.0, 6.0];
        // Without ridge: singular. With ridge: the minimum-norm-ish answer
        // splits the weight across the collinear columns.
        assert_eq!(
            normal_equations_lstsq(&x, &y, 0.0),
            Err(RegressError::Singular)
        );
        let c = normal_equations_lstsq(&x, &y, 1e-6).unwrap();
        assert!((c[0] + c[1] - 2.0).abs() < 1e-3, "{c:?}");
    }

    #[test]
    fn residual_is_orthogonal_to_columns() {
        // Least-squares optimality: Xᵀ(y − X·c) = 0.
        let x = Matrix::from_rows(&[&[1.0, 0.3], &[1.0, -0.7], &[1.0, 1.9], &[1.0, 0.2]]);
        let y = [1.0, 0.0, 3.5, 1.2];
        let c = qr_lstsq(&x, &y).unwrap();
        let fitted = x.mul_vec(&c).unwrap();
        let resid: Vec<f64> = y.iter().zip(&fitted).map(|(a, b)| a - b).collect();
        let xtres = x.transpose_mul_vec(&resid).unwrap();
        for v in xtres {
            assert!(v.abs() < 1e-10, "{v}");
        }
    }
}
