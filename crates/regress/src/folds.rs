//! Fold planning for cross-validation.
//!
//! The characterization suite is small (tens of programs), so the
//! validation harness refits the macro-model once per fold and predicts
//! the held-out observations. This module only plans *which* observations
//! each fold holds out; the refitting itself goes through
//! [`Dataset::subset`](crate::Dataset::subset) and
//! [`Dataset::fit`](crate::Dataset::fit).
//!
//! Folds are deterministic: observation order is preserved and the split
//! is contiguous-by-stride, so the same suite always produces the same
//! folds (a requirement for golden accuracy reports).

/// Plans `k` balanced folds over `n` observations.
///
/// Observation `i` lands in fold `i % k` — a stride split, so every fold
/// samples the whole suite (the suite is ordered by program family, and a
/// contiguous split would concentrate one family per fold). `k` is
/// clamped to `2..=n`; with `k == n` this is leave-one-out.
///
/// Returns one index list per fold, each non-empty, ascending, and
/// mutually disjoint; their union is `0..n`.
///
/// # Panics
///
/// Panics if `n < 2` — there is nothing to hold out.
pub fn kfold(n: usize, k: usize) -> Vec<Vec<usize>> {
    assert!(n >= 2, "cross-validation needs at least 2 observations");
    let k = k.clamp(2, n);
    let mut folds = vec![Vec::new(); k];
    for i in 0..n {
        folds[i % k].push(i);
    }
    folds
}

/// Leave-one-out plan: `n` folds of one observation each.
///
/// # Panics
///
/// As for [`kfold`].
pub fn leave_one_out(n: usize) -> Vec<Vec<usize>> {
    kfold(n, n)
}

/// The complement of `held_out` within `0..n`, ascending — the training
/// indices of one fold.
pub fn complement(n: usize, held_out: &[usize]) -> Vec<usize> {
    (0..n).filter(|i| !held_out.contains(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kfold_partitions_all_observations() {
        for (n, k) in [(10, 3), (40, 5), (7, 7), (5, 100)] {
            let folds = kfold(n, k);
            assert_eq!(folds.len(), k.clamp(2, n));
            let mut seen = vec![false; n];
            for fold in &folds {
                assert!(!fold.is_empty(), "no empty folds");
                for &i in fold {
                    assert!(!seen[i], "index {i} in two folds");
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "every observation held out once");
        }
    }

    #[test]
    fn leave_one_out_is_n_singletons() {
        let folds = leave_one_out(6);
        assert_eq!(folds.len(), 6);
        for (i, fold) in folds.iter().enumerate() {
            assert_eq!(fold, &vec![i]);
        }
    }

    #[test]
    fn complement_is_the_training_set() {
        assert_eq!(complement(5, &[1, 3]), vec![0, 2, 4]);
        assert_eq!(complement(3, &[]), vec![0, 1, 2]);
    }

    #[test]
    fn folds_are_deterministic() {
        assert_eq!(kfold(40, 5), kfold(40, 5));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn one_observation_panics() {
        let _ = kfold(1, 2);
    }
}
