//! Regression diagnostics: collinearity and generalization checks for
//! characterization datasets.
//!
//! The paper's methodology stands or falls with the quality of the test
//! suite: a suite that exercises the macro-model variables in locked
//! ratios produces a regression that *interpolates* its training programs
//! yet assigns meaningless coefficients (and extrapolates badly to new
//! applications). These diagnostics make that failure mode visible before
//! any application is estimated:
//!
//! * [`variance_inflation`] — the classic VIF per variable: how well each
//!   design-matrix column is predicted by the others (∞ ⇒ the coefficient
//!   is not identifiable),
//! * [`leave_one_out`] — per-program generalization: refit without each
//!   program and predict it, which approximates held-out application
//!   error far better than the in-fit residuals of Fig. 3.

use crate::{Dataset, FitOptions, Matrix, RegressError};

/// Variance-inflation factors of a dataset's variables.
///
/// `vif[j] = 1 / (1 − R²_j)` where `R²_j` is the coefficient of
/// determination of column `j` regressed on all other columns. A value of
/// 1 means the column is orthogonal to the rest; values above ~10 signal
/// serious collinearity; `f64::INFINITY` means the column is an exact
/// linear combination of the others.
///
/// # Errors
///
/// Returns the underlying solver error if the auxiliary regressions are
/// themselves underdetermined (fewer samples than variables).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), emx_regress::RegressError> {
/// use emx_regress::{diagnostics::variance_inflation, Dataset};
///
/// let mut d = Dataset::new(vec!["a".into(), "b".into()]);
/// d.push_sample("s1", &[1.0, 10.0], 1.0)?;
/// d.push_sample("s2", &[2.0, -3.0], 2.0)?;
/// d.push_sample("s3", &[3.0, 4.0], 3.0)?;
/// d.push_sample("s4", &[4.0, 1.0], 4.0)?;
/// let vif = variance_inflation(&d)?;
/// assert!(vif.iter().all(|&v| v < 10.0));
/// # Ok(())
/// # }
/// ```
pub fn variance_inflation(data: &Dataset) -> Result<Vec<f64>, RegressError> {
    let x = data.design_matrix();
    let n = x.cols();
    if x.rows() <= n {
        return Err(RegressError::Underdetermined {
            samples: x.rows(),
            variables: n,
        });
    }
    let mut out = Vec::with_capacity(n);
    for j in 0..n {
        let y = x.col(j);
        let rest = Matrix::from_fn(x.rows(), n - 1, |i, k| {
            let kk = if k < j { k } else { k + 1 };
            x[(i, kk)]
        });
        let r2 = match crate::solve::qr_lstsq(&rest, &y) {
            Ok(c) => {
                let fitted = rest.mul_vec(&c)?;
                let mean = y.iter().sum::<f64>() / y.len() as f64;
                let ss_tot: f64 = y.iter().map(|v| (v - mean).powi(2)).sum();
                let ss_res: f64 = y.iter().zip(&fitted).map(|(a, b)| (a - b).powi(2)).sum();
                if ss_tot > 0.0 {
                    (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
                } else {
                    1.0
                }
            }
            // A singular auxiliary regression means some *other* columns
            // are dependent; this column itself may still be fine — treat
            // as perfectly predicted to flag the group.
            Err(RegressError::Singular) => 1.0,
            Err(e) => return Err(e),
        };
        out.push(if r2 >= 1.0 {
            f64::INFINITY
        } else {
            1.0 / (1.0 - r2)
        });
    }
    Ok(out)
}

/// One sample's leave-one-out prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct LooSample {
    /// Sample label.
    pub label: String,
    /// Observed dependent value.
    pub observed: f64,
    /// Prediction from the model fitted *without* this sample.
    pub predicted: f64,
    /// Signed relative error in percent.
    pub percent: f64,
}

/// Leave-one-out cross-validation summary.
#[derive(Debug, Clone, PartialEq)]
pub struct LooReport {
    /// Per-sample held-out predictions.
    pub samples: Vec<LooSample>,
    /// Samples whose removal made the reduced fit singular: each is the
    /// *sole* source of signal for some variable (e.g. the only program
    /// exercising uncached fetches). A valuable suite-design diagnostic
    /// in its own right.
    pub sole_sources: Vec<String>,
    /// Root mean square of the per-sample percent errors (over predicted
    /// samples).
    pub rms_percent: f64,
    /// Largest absolute percent error (over predicted samples).
    pub max_abs_percent: f64,
}

/// Leave-one-out cross-validation: refits the model `n` times, each time
/// predicting the held-out sample. Samples whose removal leaves the
/// reduced system singular are recorded in
/// [`LooReport::sole_sources`] rather than predicted.
///
/// # Errors
///
/// Returns solver errors other than singularity (e.g. an underdetermined
/// dataset).
pub fn leave_one_out(data: &Dataset, options: FitOptions) -> Result<LooReport, RegressError> {
    let x = data.design_matrix();
    let y = data.dependent();
    let labels = data.labels();
    let n = data.len();
    let mut samples = Vec::with_capacity(n);
    let mut sole_sources = Vec::new();
    let mut sq = 0.0;
    let mut max_abs = 0.0f64;
    for held in 0..n {
        let mut reduced = Dataset::new(data.names().to_vec());
        for i in 0..n {
            if i != held {
                reduced.push_sample(labels[i].clone(), x.row(i), y[i])?;
            }
        }
        let fit = match reduced.fit(options) {
            Ok(fit) => fit,
            Err(RegressError::Singular) => {
                sole_sources.push(labels[held].clone());
                continue;
            }
            Err(e) => return Err(e),
        };
        let predicted = fit.predict(x.row(held))?;
        let observed = y[held];
        let percent = if observed != 0.0 {
            (predicted - observed) / observed * 100.0
        } else {
            0.0
        };
        sq += percent * percent;
        max_abs = max_abs.max(percent.abs());
        samples.push(LooSample {
            label: labels[held].clone(),
            observed,
            predicted,
            percent,
        });
    }
    let predicted = samples.len().max(1);
    Ok(LooReport {
        samples,
        sole_sources,
        rms_percent: (sq / predicted as f64).sqrt(),
        max_abs_percent: max_abs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn well_posed() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        let rows: [([f64; 2], f64); 6] = [
            ([1.0, 9.0], 21.0),
            ([2.0, 1.0], 7.1),
            ([3.0, 4.0], 14.0),
            ([4.0, 2.0], 11.9),
            ([5.0, 7.0], 24.1),
            ([6.0, 3.0], 18.0),
        ];
        for (i, (x, y)) in rows.iter().enumerate() {
            d.push_sample(format!("s{i}"), x, *y).unwrap();
        }
        d
    }

    #[test]
    fn vif_is_low_for_orthogonal_designs() {
        let vif = variance_inflation(&well_posed()).unwrap();
        assert_eq!(vif.len(), 2);
        for v in vif {
            assert!(v < 5.0, "vif = {v}");
        }
    }

    #[test]
    fn vif_detects_collinear_columns() {
        let mut d = Dataset::new(vec!["a".into(), "b".into(), "sum".into()]);
        for i in 0..6 {
            let a = i as f64;
            let b = (i * i % 5) as f64;
            d.push_sample(format!("s{i}"), &[a, b, a + b], a * 2.0 + b)
                .unwrap();
        }
        let vif = variance_inflation(&d).unwrap();
        assert!(vif.iter().any(|v| v.is_infinite()), "{vif:?}");
    }

    #[test]
    fn vif_requires_enough_samples() {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        d.push_sample("only", &[1.0, 2.0], 3.0).unwrap();
        assert!(matches!(
            variance_inflation(&d),
            Err(RegressError::Underdetermined { .. })
        ));
    }

    #[test]
    fn loo_predicts_well_posed_data() {
        let report = leave_one_out(&well_posed(), FitOptions::default()).unwrap();
        assert_eq!(report.samples.len(), 6);
        // y ≈ 2a + 2b+ε: held-out errors exceed in-fit residuals but stay
        // bounded for this well-posed design.
        assert!(report.rms_percent < 15.0, "rms = {}", report.rms_percent);
        assert!(report.max_abs_percent >= report.rms_percent);
    }

    #[test]
    fn loo_flags_single_source_variables() {
        // Variable `b` is nonzero in exactly one sample: removing that
        // sample makes the reduced fit singular, so it is reported as a
        // sole signal source instead of predicted.
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        d.push_sample("s0", &[1.0, 0.0], 2.0).unwrap();
        d.push_sample("s1", &[2.0, 0.0], 4.0).unwrap();
        d.push_sample("s2", &[3.0, 0.0], 6.0).unwrap();
        d.push_sample("special", &[1.0, 5.0], 12.0).unwrap();
        let report = leave_one_out(&d, FitOptions::default()).unwrap();
        assert_eq!(report.sole_sources, vec!["special".to_owned()]);
        assert_eq!(report.samples.len(), 3);
    }
}
