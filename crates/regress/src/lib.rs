//! Dense matrix kernel and linear-regression engine for energy macro-modeling.
//!
//! The paper ("Energy Estimation for Extensible Processors", DATE 2003)
//! determines the energy coefficients of its macro-model template by solving
//! the linear matrix equation `E = X · C` in the least-squares sense using
//! the pseudo-inverse method (Eq. 5):
//!
//! ```text
//! Ĉ = (Xᵀ X)⁻¹ Xᵀ E
//! ```
//!
//! This crate provides everything that flow needs, from scratch:
//!
//! * [`Matrix`] — a small dense row-major `f64` matrix with the usual
//!   operations (product, transpose, norms),
//! * [`solve`] — Cholesky factorization for the normal equations and
//!   Householder QR for a numerically robust alternative,
//! * [`lstsq`] / [`Dataset`] / [`LinearFit`] — high-level regression with
//!   per-sample fitting errors, RMS error and R², exactly the statistics the
//!   paper reports in Fig. 3,
//! * [`stats`] — small statistical helpers (RMS, mean absolute error,
//!   Spearman rank correlation for relative-accuracy studies like Fig. 4).
//!
//! # Example
//!
//! Fit `y = 2·x₀ + 3·x₁` from four noise-free observations:
//!
//! ```
//! # fn main() -> Result<(), emx_regress::RegressError> {
//! use emx_regress::Dataset;
//!
//! let mut data = Dataset::new(vec!["x0".into(), "x1".into()]);
//! data.push_sample("s1", &[1.0, 0.0], 2.0)?;
//! data.push_sample("s2", &[0.0, 1.0], 3.0)?;
//! data.push_sample("s3", &[1.0, 1.0], 5.0)?;
//! data.push_sample("s4", &[2.0, 1.0], 7.0)?;
//! let fit = data.fit(Default::default())?;
//! assert!(fit.coefficient("x0").is_some_and(|c| (c - 2.0).abs() < 1e-9));
//! assert!(fit.coefficient("x1").is_some_and(|c| (c - 3.0).abs() < 1e-9));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diagnostics;
mod error;
pub mod folds;
mod matrix;
mod model;
pub mod solve;
pub mod stats;

pub use error::RegressError;
pub use matrix::Matrix;
pub use model::{lstsq, Dataset, FitMethod, FitOptions, LinearFit, SampleError};
