use crate::solve::{normal_equations_lstsq, qr_lstsq};
use crate::{Matrix, RegressError};

/// Which numerical method to use for the least-squares solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FitMethod {
    /// Householder QR on the design matrix (numerically preferred).
    #[default]
    Qr,
    /// The paper's pseudo-inverse method: Cholesky on the normal equations
    /// `XᵀX · c = Xᵀy` (Eq. 5 of the paper).
    NormalEquations,
}

/// Options controlling a fit.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FitOptions {
    /// Numerical method.
    pub method: FitMethod,
    /// Ridge (Tikhonov) regularization strength added to the normal
    /// equations; `0.0` disables it. Only honoured by
    /// [`FitMethod::NormalEquations`].
    pub ridge: f64,
}

/// Fitting error of one sample, as reported in Fig. 3 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleError {
    /// Label of the sample (e.g. the test-program name).
    pub label: String,
    /// Observed value of the dependent variable.
    pub observed: f64,
    /// Fitted (predicted) value.
    pub fitted: f64,
    /// Signed relative error in percent: `(fitted − observed)/observed × 100`.
    pub percent: f64,
}

/// Result of a linear least-squares fit.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearFit {
    names: Vec<String>,
    coefficients: Vec<f64>,
    samples: Vec<SampleError>,
    r_squared: f64,
    rms_percent: f64,
    max_abs_percent: f64,
}

impl LinearFit {
    /// The fitted coefficient vector, in dataset variable order.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Variable names, in the same order as [`Self::coefficients`].
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Looks up a coefficient by variable name.
    pub fn coefficient(&self, name: &str) -> Option<f64> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.coefficients[i])
    }

    /// Per-sample fitting errors (the data behind Fig. 3).
    pub fn sample_errors(&self) -> &[SampleError] {
        &self.samples
    }

    /// Coefficient of determination R².
    pub fn r_squared(&self) -> f64 {
        self.r_squared
    }

    /// Root-mean-square of the per-sample percent errors.
    pub fn rms_percent_error(&self) -> f64 {
        self.rms_percent
    }

    /// Largest absolute per-sample percent error.
    pub fn max_abs_percent_error(&self) -> f64 {
        self.max_abs_percent
    }

    /// Mean of the absolute per-sample percent errors (the summary the
    /// cross-validation report aggregates per variable group).
    pub fn mean_abs_percent_error(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.percent.abs()).sum::<f64>() / self.samples.len() as f64
    }

    /// Predicts the dependent variable for a new sample row.
    ///
    /// # Errors
    ///
    /// Returns [`RegressError::SampleWidth`] if `row` does not have one value
    /// per variable.
    pub fn predict(&self, row: &[f64]) -> Result<f64, RegressError> {
        if row.len() != self.coefficients.len() {
            return Err(RegressError::SampleWidth {
                got: row.len(),
                expected: self.coefficients.len(),
            });
        }
        Ok(row.iter().zip(&self.coefficients).map(|(x, c)| x * c).sum())
    }
}

/// A named-variable regression dataset: one row per observation.
///
/// In the characterization flow, each row is one test program; the columns
/// are the macro-model variables measured by instruction-set simulation and
/// resource-usage analysis; the dependent value is the energy reported by
/// the RTL-level estimator.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), emx_regress::RegressError> {
/// use emx_regress::Dataset;
///
/// let mut d = Dataset::new(vec!["a".into(), "b".into()]);
/// d.push_sample("p0", &[1.0, 2.0], 8.0)?;
/// d.push_sample("p1", &[2.0, 1.0], 7.0)?;
/// d.push_sample("p2", &[1.0, 1.0], 5.0)?;
/// let fit = d.fit(Default::default())?;
/// assert!(fit.coefficient("a").is_some_and(|c| (c - 2.0).abs() < 1e-9));
/// assert!(fit.coefficient("b").is_some_and(|c| (c - 3.0).abs() < 1e-9));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dataset {
    names: Vec<String>,
    labels: Vec<String>,
    rows: Vec<f64>,
    y: Vec<f64>,
}

impl Dataset {
    /// Creates an empty dataset with the given variable names.
    pub fn new(names: Vec<String>) -> Self {
        Dataset {
            names,
            labels: Vec::new(),
            rows: Vec::new(),
            y: Vec::new(),
        }
    }

    /// Variable names (column order).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Returns `true` if the dataset has no observations.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Appends one observation.
    ///
    /// # Errors
    ///
    /// Returns [`RegressError::SampleWidth`] if `row` does not have one value
    /// per variable, or [`RegressError::NonFinite`] if any value is NaN or
    /// infinite.
    pub fn push_sample(
        &mut self,
        label: impl Into<String>,
        row: &[f64],
        y: f64,
    ) -> Result<(), RegressError> {
        if row.len() != self.names.len() {
            return Err(RegressError::SampleWidth {
                got: row.len(),
                expected: self.names.len(),
            });
        }
        if !y.is_finite() || row.iter().any(|v| !v.is_finite()) {
            return Err(RegressError::NonFinite);
        }
        self.labels.push(label.into());
        self.rows.extend_from_slice(row);
        self.y.push(y);
        Ok(())
    }

    /// The variable row of observation `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        let n = self.names.len();
        &self.rows[i * n..(i + 1) * n]
    }

    /// The dependent value of observation `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn observed(&self, i: usize) -> f64 {
        self.y[i]
    }

    /// A new dataset holding only the selected observations, in the given
    /// order — the fold-aware refitting primitive: hold out a fold by
    /// fitting the complement (see [`crate::folds`]).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.names.clone());
        for &i in indices {
            out.labels.push(self.labels[i].clone());
            out.rows.extend_from_slice(self.row(i));
            out.y.push(self.y[i]);
        }
        out
    }

    /// The design matrix `X` (observations × variables).
    pub fn design_matrix(&self) -> Matrix {
        let n = self.names.len();
        Matrix::from_fn(self.y.len(), n, |i, j| self.rows[i * n + j])
    }

    /// The dependent-variable vector.
    pub fn dependent(&self) -> &[f64] {
        &self.y
    }

    /// Observation labels.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Fits the linear model `y ≈ X · c` and computes fit statistics.
    ///
    /// # Errors
    ///
    /// * [`RegressError::Underdetermined`] — fewer observations than
    ///   variables,
    /// * [`RegressError::Singular`] — linearly dependent columns (e.g. a
    ///   macro-model variable that is never exercised by the test suite),
    /// * shape errors propagated from the solver.
    pub fn fit(&self, options: FitOptions) -> Result<LinearFit, RegressError> {
        let x = self.design_matrix();
        let coefficients = match options.method {
            FitMethod::Qr => qr_lstsq(&x, &self.y)?,
            FitMethod::NormalEquations => normal_equations_lstsq(&x, &self.y, options.ridge)?,
        };
        let fitted = x.mul_vec(&coefficients)?;
        let mean_y = self.y.iter().sum::<f64>() / self.y.len().max(1) as f64;
        let ss_tot: f64 = self.y.iter().map(|v| (v - mean_y).powi(2)).sum();
        let ss_res: f64 = self
            .y
            .iter()
            .zip(&fitted)
            .map(|(o, f)| (o - f).powi(2))
            .sum();
        let r_squared = if ss_tot > 0.0 {
            1.0 - ss_res / ss_tot
        } else {
            1.0
        };

        let mut samples = Vec::with_capacity(self.y.len());
        let mut sq_sum = 0.0;
        let mut max_abs = 0.0_f64;
        for (i, &observed) in self.y.iter().enumerate() {
            let f = fitted[i];
            let percent = if observed != 0.0 {
                (f - observed) / observed * 100.0
            } else {
                0.0
            };
            sq_sum += percent * percent;
            max_abs = max_abs.max(percent.abs());
            samples.push(SampleError {
                label: self.labels[i].clone(),
                observed,
                fitted: f,
                percent,
            });
        }
        let rms_percent = (sq_sum / self.y.len().max(1) as f64).sqrt();

        Ok(LinearFit {
            names: self.names.clone(),
            coefficients,
            samples,
            r_squared,
            rms_percent,
            max_abs_percent: max_abs,
        })
    }
}

/// Convenience one-shot least squares over raw arrays.
///
/// Equivalent to building a [`Dataset`] with anonymous variable names and
/// calling [`Dataset::fit`] with default options; returns only the
/// coefficient vector.
///
/// # Errors
///
/// Same conditions as [`Dataset::fit`].
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), emx_regress::RegressError> {
/// use emx_regress::{lstsq, Matrix};
///
/// let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
/// let c = lstsq(&x, &[1.0, 2.0, 3.0])?;
/// assert!((c[0] - 1.0).abs() < 1e-10 && (c[1] - 2.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn lstsq(x: &Matrix, y: &[f64]) -> Result<Vec<f64>, RegressError> {
    qr_lstsq(x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset() -> Dataset {
        let mut d = Dataset::new(vec!["u".into(), "v".into(), "w".into()]);
        // y = 10u + 5v + 1w, with tiny perturbations.
        let rows: [(&str, [f64; 3], f64); 6] = [
            ("p0", [1.0, 0.0, 0.0], 10.0),
            ("p1", [0.0, 1.0, 0.0], 5.05),
            ("p2", [0.0, 0.0, 1.0], 0.99),
            ("p3", [1.0, 1.0, 1.0], 16.02),
            ("p4", [2.0, 1.0, 0.0], 24.9),
            ("p5", [1.0, 2.0, 3.0], 23.1),
        ];
        for (l, r, y) in rows {
            d.push_sample(l, &r, y).unwrap();
        }
        d
    }

    #[test]
    fn fit_recovers_approximate_coefficients() {
        let fit = toy_dataset().fit(FitOptions::default()).unwrap();
        assert!((fit.coefficient("u").unwrap() - 10.0).abs() < 0.2);
        assert!((fit.coefficient("v").unwrap() - 5.0).abs() < 0.2);
        assert!((fit.coefficient("w").unwrap() - 1.0).abs() < 0.2);
        assert!(fit.r_squared() > 0.999);
        assert!(fit.rms_percent_error() < 3.0);
    }

    #[test]
    fn both_methods_agree() {
        let d = toy_dataset();
        let qr = d
            .fit(FitOptions {
                method: FitMethod::Qr,
                ridge: 0.0,
            })
            .unwrap();
        let ne = d
            .fit(FitOptions {
                method: FitMethod::NormalEquations,
                ridge: 0.0,
            })
            .unwrap();
        for (a, b) in qr.coefficients().iter().zip(ne.coefficients()) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn predict_uses_coefficients() {
        let fit = toy_dataset().fit(FitOptions::default()).unwrap();
        let p = fit.predict(&[1.0, 1.0, 1.0]).unwrap();
        assert!((p - 16.0).abs() < 0.3);
        assert!(matches!(
            fit.predict(&[1.0]),
            Err(RegressError::SampleWidth {
                got: 1,
                expected: 3
            })
        ));
    }

    #[test]
    fn sample_errors_are_reported_per_program() {
        let fit = toy_dataset().fit(FitOptions::default()).unwrap();
        assert_eq!(fit.sample_errors().len(), 6);
        assert_eq!(fit.sample_errors()[0].label, "p0");
        assert!(fit.max_abs_percent_error() >= fit.sample_errors()[0].percent.abs());
    }

    #[test]
    fn push_sample_validates() {
        let mut d = Dataset::new(vec!["a".into()]);
        assert!(matches!(
            d.push_sample("x", &[1.0, 2.0], 1.0),
            Err(RegressError::SampleWidth { .. })
        ));
        assert_eq!(
            d.push_sample("x", &[f64::NAN], 1.0),
            Err(RegressError::NonFinite)
        );
        assert_eq!(
            d.push_sample("x", &[1.0], f64::INFINITY),
            Err(RegressError::NonFinite)
        );
        assert!(d.is_empty());
    }

    #[test]
    fn subset_preserves_rows_labels_and_order() {
        let d = toy_dataset();
        let s = d.subset(&[4, 0, 2]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.labels(), ["p4", "p0", "p2"]);
        assert_eq!(s.row(0), d.row(4));
        assert_eq!(s.row(2), d.row(2));
        assert_eq!(s.observed(1), d.observed(0));
        // Held-out refit: dropping one sample still recovers the model.
        let fit = d
            .subset(&crate::folds::complement(d.len(), &[5]))
            .fit(FitOptions::default());
        let fit = fit.unwrap();
        assert!((fit.coefficient("u").unwrap() - 10.0).abs() < 0.3);
        let p = fit.predict(d.row(5)).unwrap();
        assert!((p - d.observed(5)).abs() / d.observed(5) < 0.05, "{p}");
    }

    #[test]
    fn mean_abs_percent_error_averages_samples() {
        let fit = toy_dataset().fit(FitOptions::default()).unwrap();
        let expected = fit
            .sample_errors()
            .iter()
            .map(|s| s.percent.abs())
            .sum::<f64>()
            / fit.sample_errors().len() as f64;
        assert!((fit.mean_abs_percent_error() - expected).abs() < 1e-12);
        assert!(fit.mean_abs_percent_error() <= fit.max_abs_percent_error());
    }

    #[test]
    fn underdetermined_dataset_errors() {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        d.push_sample("only", &[1.0, 2.0], 3.0).unwrap();
        assert!(matches!(
            d.fit(FitOptions::default()),
            Err(RegressError::Underdetermined { .. })
        ));
    }

    #[test]
    fn exact_fit_has_zero_error() {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        d.push_sample("p0", &[1.0, 0.0], 4.0).unwrap();
        d.push_sample("p1", &[0.0, 1.0], 7.0).unwrap();
        d.push_sample("p2", &[2.0, 3.0], 29.0).unwrap();
        let fit = d.fit(FitOptions::default()).unwrap();
        assert!(fit.rms_percent_error() < 1e-9);
        assert!(fit.max_abs_percent_error() < 1e-9);
        assert!((fit.r_squared() - 1.0).abs() < 1e-12);
    }
}
