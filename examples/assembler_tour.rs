//! A tour of the emx toolchain below the energy flow: the assembler, the
//! disassembling program printer, the ISS, and the execution statistics
//! that feed the macro-model.
//!
//! ```sh
//! cargo run --release --example assembler_tour
//! ```

use emx::prelude::*;

const SOURCE: &str = r#"
# Compute the 10th triangular number, exercising several formats.
.data
table:  .word 1, 2, 3, 4        # some data to load
out:    .space 4

.text
start:
    movi    a2, 10              # n
    movi    a3, 0               # sum
loop:
    add     a3, a3, a2
    addi    a2, a2, -1
    bnez    a2, loop

    movi    a4, table           # label address materialization
    l32i    a5, 4(a4)           # table[1]
    add     a3, a3, a5          # sum += 2

    movi    a6, out
    s32i    a3, 0(a6)
    halt
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = Assembler::new().assemble(SOURCE)?;

    println!(
        "assembled {} instructions, {} data bytes\n",
        program.len(),
        program.data().len()
    );
    println!("disassembly:\n{program}");

    let ext = ExtensionSet::empty();
    let mut sim = Interp::new(&program, &ext, ProcConfig::default());
    let run = sim.run(100_000)?;

    let result = sim
        .state()
        .mem
        .read_u32(program.symbol("out").expect("label exists"));
    println!("result: {result} (expected {})", 10 * 11 / 2 + 2);
    assert_eq!(result, 57);

    println!(
        "\nexecution statistics (the macro-model's raw material):\n{}",
        run.stats
    );

    // Error reporting: the assembler pinpoints the offending line.
    let err = Assembler::new()
        .assemble("movi a2, 1\nfrobnicate a2\n")
        .expect_err("bad mnemonic");
    println!("diagnostics example: {err}");
    Ok(())
}
