//! Design-space exploration: the use case the paper builds the
//! macro-model for.
//!
//! A designer weighing four custom-instruction choices for a
//! Reed–Solomon codec wants energy (and performance) per candidate
//! *without synthesizing four processors*. The macro-model ranks the
//! candidates from instruction-set simulation alone; we cross-check the
//! ranking against the slow reference estimator (this example's analogue
//! of Fig. 4).
//!
//! ```sh
//! cargo run --release --example design_space_exploration
//! ```

use emx::prelude::*;
use emx::workloads::reed_solomon::RsConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("characterizing the base processor once...");
    let suite = emx::workloads::suite::full_training_suite();
    let cases: Vec<TrainingCase<'_>> = suite
        .iter()
        .map(|w| TrainingCase {
            name: w.name(),
            program: w.program(),
            ext: w.ext(),
        })
        .collect();
    let model = Characterizer::new(ProcConfig::default())
        .characterize(&cases)?
        .model;

    println!("\nRS(15,11) codec under four custom-instruction choices:\n");
    println!(
        "{:<6} {:<34} {:>9} {:>12} {:>12}",
        "cfg", "custom instructions", "cycles", "E estimate", "E reference"
    );

    let mut ranked: Vec<(String, f64, f64)> = Vec::new();
    for cfg in RsConfig::ALL {
        let w = cfg.workload();
        // The fast path — all a design loop needs per candidate.
        let est = model.estimate(w.program(), w.ext(), ProcConfig::default())?;
        // The slow path — run here only to demonstrate tracking.
        let reference =
            RtlEnergyEstimator::new().estimate(w.program(), w.ext(), ProcConfig::default())?;
        let insts: Vec<String> = w.ext().iter().map(|i| i.name().to_owned()).collect();
        println!(
            "{:<6} {:<34} {:>9} {:>12} {:>12}",
            cfg.name(),
            if insts.is_empty() {
                "(base ISA only)".to_owned()
            } else {
                insts.join(",")
            },
            est.stats.total_cycles,
            est.energy.to_string(),
            reference.total.to_string(),
        );
        ranked.push((
            cfg.name().to_owned(),
            est.energy.as_picojoules(),
            reference.total.as_picojoules(),
        ));
    }

    // The decision the designer actually makes: which candidate wins?
    let by_est = ranked
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("four candidates");
    let by_ref = ranked
        .iter()
        .min_by(|a, b| a.2.total_cmp(&b.2))
        .expect("four candidates");
    println!(
        "\nmacro-model picks: {}   reference picks: {}",
        by_est.0, by_ref.0
    );
    assert_eq!(
        by_est.0, by_ref.0,
        "relative accuracy must preserve the winner"
    );
    println!(
        "the fast model and the reference agree — custom instructions chosen without synthesis"
    );

    // The same loop through the DSE API: Pareto front and EDP ranking.
    let workloads: Vec<_> = RsConfig::ALL.iter().map(|c| c.workload()).collect();
    let candidates: Vec<emx::core::dse::Candidate<'_>> = workloads
        .iter()
        .map(|w| emx::core::dse::Candidate {
            name: w.name(),
            program: w.program(),
            ext: w.ext(),
        })
        .collect();
    let points = emx::core::dse::evaluate(&model, &candidates, ProcConfig::default())?;
    println!("\nenergy/performance Pareto front:");
    for &i in &emx::core::dse::pareto_front(&points) {
        println!(
            "  {:<22} {:>10} cycles   {}",
            points[i].name, points[i].cycles, points[i].energy
        );
    }
    let edp = emx::core::dse::rank_by_edp(&points);
    println!(
        "best energy-delay product: {} (EDP = {:.3e} pJ·cycles)",
        points[edp[0]].name,
        points[edp[0]].edp()
    );
    Ok(())
}
