//! Design-space exploration: the use case the paper builds the
//! macro-model for.
//!
//! A designer weighing custom-instruction choices for a Reed–Solomon
//! codec wants energy (and performance) per candidate *without
//! synthesizing a processor per candidate*. The `emx-dse` engine
//! enumerates every subset of the extension units, prunes redundant
//! builds, evaluates the survivors in parallel through the macro-model,
//! and reports the energy/cycles Pareto front; we cross-check the winner
//! against the slow reference estimator (this example's analogue of
//! Fig. 4).
//!
//! ```sh
//! cargo run --release --example design_space_exploration
//! ```

use emx::dse::{self, CandidateSpace, EstimationCache};
use emx::obs::Collector;
use emx::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("characterizing the base processor once...");
    let suite = emx::workloads::suite::full_training_suite();
    let cases = emx::workloads::suite::training_cases(&suite);
    let model = Characterizer::new(ProcConfig::default())
        .characterize(&cases)?
        .model;

    // ---- Full search: every subset of the RS extension units.
    let space = CandidateSpace::reed_solomon();
    let mut cache = EstimationCache::new();
    let mut obs = Collector::new();
    let out = dse::explore(
        &model,
        &space,
        None,
        &ProcConfig::default(),
        2,
        &mut cache,
        &mut obs,
    )?;
    println!(
        "\nRS(15,11) codec: {} subsets enumerated, {} dominated, {} evaluated\n",
        out.enumeration.enumerated,
        out.enumeration.pruned,
        out.points.len()
    );
    println!(
        "{:<16} {:<24} {:>9} {:>9} {:>12} {:>7}",
        "candidate", "workload", "area", "cycles", "E estimate", "pareto"
    );
    for (i, (c, p)) in out
        .enumeration
        .candidates
        .iter()
        .zip(&out.points)
        .enumerate()
    {
        println!(
            "{:<16} {:<24} {:>9.1} {:>9} {:>12} {:>7}",
            c.name,
            c.workload.name(),
            c.area,
            p.cycles,
            p.energy.to_string(),
            if out.pareto.contains(&i) { "*" } else { "" }
        );
    }

    // The decision the designer actually makes: which candidate wins?
    // Cross-check the macro-model's pick against the slow reference path
    // (the thing the fast path lets a design loop skip).
    let by_est = out.best_energy.expect("candidates evaluated");
    let by_ref = out
        .enumeration
        .candidates
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let reference = RtlEnergyEstimator::new().estimate(
                c.workload.program(),
                c.workload.ext(),
                ProcConfig::default(),
            )?;
            Ok((i, reference.total.as_picojoules()))
        })
        .collect::<Result<Vec<_>, Box<dyn std::error::Error>>>()?
        .into_iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("candidates evaluated")
        .0;
    println!(
        "\nmacro-model picks: {}   reference picks: {}",
        out.points[by_est].name, out.points[by_ref].name
    );
    assert_eq!(
        out.points[by_est].name, out.points[by_ref].name,
        "relative accuracy must preserve the winner"
    );
    println!(
        "the fast model and the reference agree — custom instructions chosen without synthesis"
    );

    println!("\nenergy/performance Pareto front:");
    for &i in &out.pareto {
        println!(
            "  {:<16} {:>10} cycles   {}",
            out.points[i].name, out.points[i].cycles, out.points[i].energy
        );
    }
    let edp = out.best_edp.expect("candidates evaluated");
    println!(
        "best energy-delay product: {} (EDP = {:.3e} pJ·cycles)",
        out.points[edp].name,
        out.points[edp].edp()
    );

    // ---- Area-constrained search: cap the budget below the full RS unit
    // and watch the front adapt to what still fits.
    let full_area = out
        .enumeration
        .candidates
        .iter()
        .map(|c| c.area)
        .fold(0.0f64, f64::max);
    let budget = full_area * 0.8;
    let constrained = dse::explore(
        &model,
        &space,
        Some(budget),
        &ProcConfig::default(),
        2,
        &mut cache,
        &mut obs,
    )?;
    println!(
        "\nunder an area budget of {budget:.0} net-equivalents ({} subsets excluded):",
        constrained.enumeration.over_budget
    );
    let pick = constrained.best_energy.expect("base always fits");
    println!(
        "  best affordable candidate: {} ({})",
        constrained.points[pick].name, constrained.points[pick].energy
    );

    // ---- The cache makes reruns free: the constrained search re-used
    // every estimate, and a warm repeat of the full search is all hits.
    let hits_before = obs.counter("dse.cache.hits");
    let rerun = dse::explore(
        &model,
        &space,
        None,
        &ProcConfig::default(),
        2,
        &mut cache,
        &mut obs,
    )?;
    let new_hits = obs.counter("dse.cache.hits") - hits_before;
    assert!(new_hits > 0.0, "warm rerun must hit the cache");
    for (a, b) in out.points.iter().zip(&rerun.points) {
        assert_eq!(a.energy.as_picojoules(), b.energy.as_picojoules());
        assert_eq!(a.cycles, b.cycles);
    }
    println!(
        "\nwarm-cache rerun: {new_hits:.0} hits, byte-identical results — \
         the search loop costs one ISS run per *new* candidate only"
    );
    Ok(())
}
