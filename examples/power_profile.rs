//! Power-over-time profiling: the reference estimator can report energy
//! per cycle window (the waveform view an RTL power tool produces), which
//! exposes a program's phases — here, a codec whose encode, corrupt,
//! decode and correct phases have visibly different power signatures.
//!
//! ```sh
//! cargo run --release --example power_profile
//! ```

use emx::prelude::*;
use emx::workloads::reed_solomon::RsConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = RsConfig::Rs3.workload();
    let (report, profile) = RtlEnergyEstimator::new().estimate_profiled(
        w.program(),
        w.ext(),
        ProcConfig::default(),
        512,
    )?;

    println!(
        "{}: {} over {} cycles ({:.1} mW average at 187 MHz)\n",
        w.name(),
        report.total,
        report.stats.total_cycles,
        report.average_power_mw(187.0)
    );

    // A terminal power waveform: one bar per 512-cycle window.
    let windows = profile.windows();
    let peak = windows
        .iter()
        .map(|e| e.as_picojoules())
        .fold(0.0f64, f64::max);
    println!(
        "power per 512-cycle window (each ░ ≈ {:.0} nJ):",
        peak / 40.0 * 1e-3
    );
    for (i, e) in windows.iter().enumerate() {
        let bars = ((e.as_picojoules() / peak) * 40.0).round() as usize;
        println!("  {:>6} |{}", i * 512, "░".repeat(bars));
    }
    println!(
        "\npeak window power: {:.1} mW   average: {:.1} mW",
        profile.peak_power_mw(187.0),
        profile.average_power_mw(187.0)
    );
    Ok(())
}
