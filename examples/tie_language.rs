//! The textual TIE-like description language: define a custom extension
//! in text (as the paper's designers did in TIE), compile it, and run a
//! workload on the enhanced processor.
//!
//! ```sh
//! cargo run --release --example tie_language
//! ```

use emx::prelude::*;
use emx::tie::lang::parse_extension;

/// A saturating 8-bit pixel pipeline: multiply-shift with clamping plus a
/// running maximum kept in a custom register.
const EXTENSION_SRC: &str = r#"
extension pixel {
    state peak : 8;

    # d = clamp((a * g) >> 4, 0, 255), and track the brightest result.
    inst gain(a: gpr(8), g: gpr(8), pk_in: state(peak),
              out d: gpr, out pk_out: state(peak)) {
        p       : 16 = a * g;
        scaled  : 12 = slice(p, 4, 12);
        over         = ltu(255, scaled);
        clamped : 8  = mux(over, 255, scaled);
        d       : 8  = clamped;
        pk_out  : 8  = maxu(pk_in, clamped);
    }

    inst rdpeak(pk_in: state(peak), out d: gpr) {
        d = pk_in;
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ext = parse_extension(EXTENSION_SRC)?;
    println!("compiled extension `{}`:", ext.name());
    for inst in &ext {
        println!("  {:<8} latency {} cycle(s)", inst.name(), inst.latency());
    }

    let mut asm = Assembler::new();
    ext.register_mnemonics(&mut asm);
    let pixels: Vec<u32> = (0..64).map(|i| (i * 37 + 11) % 256).collect();
    let data = pixels
        .iter()
        .map(|p| p.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let program = asm.assemble(&format!(
        ".data\npx: .word {data}\nout: .space 256\n.text\n\
         movi a2, px\nmovi a3, out\nmovi a4, 64\nmovi a5, 40   # gain 40/16 = 2.5x\n\
         loop:\nl32i a6, 0(a2)\ngain a7, a6, a5\ns32i a7, 0(a3)\n\
         addi a2, a2, 4\naddi a3, a3, 4\naddi a4, a4, -1\nbnez a4, loop\n\
         rdpeak a8\nhalt"
    ))?;

    let mut sim = Interp::new(&program, &ext, ProcConfig::default());
    let run = sim.run(1_000_000)?;

    // Verify against the Rust reference of the pixel pipeline.
    let out_base = program.symbol("out").expect("label exists");
    let mut expected_peak = 0u32;
    for (i, &p) in pixels.iter().enumerate() {
        let expected = ((p * 40) >> 4).min(255);
        expected_peak = expected_peak.max(expected);
        let got = sim.state().mem.read_u32(out_base + 4 * i as u32);
        assert_eq!(got, expected, "pixel {i}");
    }
    assert_eq!(sim.state().reg(Reg::new(8)), expected_peak);
    println!(
        "\nprocessed 64 pixels in {} cycles; peak value {expected_peak} (verified)",
        run.stats.total_cycles
    );

    // The extension defined in text is a first-class citizen of the energy
    // flow: the reference estimator charges its datapath…
    let report = RtlEnergyEstimator::new().estimate(&program, &ext, ProcConfig::default())?;
    println!(
        "custom-hardware energy: {}",
        report.breakdown.custom_total()
    );
    println!("total energy:           {}", report.total);
    Ok(())
}
