//! Defining a custom (TIE-like) instruction from scratch: describe the
//! datapath as a dataflow graph over the hardware primitive library, bind
//! its operands, compile it into an extension set, and run + measure a
//! program that uses it.
//!
//! The instruction built here is `popacc`: a population-count
//! accumulator — XOR-reduce folding plus an adder tree feeding a 16-bit
//! custom register, a shape common in telecom bit-stream processing.
//!
//! ```sh
//! cargo run --release --example custom_instruction
//! ```

use emx::prelude::*;

fn build_popcount_extension() -> Result<ExtensionSet, Box<dyn std::error::Error>> {
    let mut ext = ExtensionBuilder::new("popacc");
    let acc = ext.state("acc", 16)?;

    // popacc a: acc += popcount(a), as an adder tree over 2-bit slices.
    let mut g = DfGraph::new();
    let a = g.input("a", 32);
    let acc_in = g.input("acc", 16);
    // Stage 1: sixteen 2-bit fields, each reduced to its bit count
    // (slice + slice + add at width 2 per field).
    let mut counts = Vec::new();
    for k in 0..16u8 {
        let b0 = g.node(PrimOp::Slice { lsb: 2 * k }, 1, &[a])?;
        let b1 = g.node(PrimOp::Slice { lsb: 2 * k + 1 }, 1, &[a])?;
        counts.push(g.node(PrimOp::Add, 2, &[b0, b1])?);
    }
    // Stages 2..5: pairwise adder tree.
    let mut width = 3u8;
    while counts.len() > 1 {
        let mut next = Vec::new();
        for pair in counts.chunks(2) {
            next.push(g.node(PrimOp::Add, width, &[pair[0], pair[1]])?);
        }
        counts = next;
        width += 1;
    }
    let total = counts[0];
    let sum = g.node(PrimOp::Add, 16, &[acc_in, total])?;
    g.output(sum);

    ext.instruction("popacc", g)?
        .bind_input(InputBind::GprS)?
        .bind_input(InputBind::State(acc))?
        .bind_output(OutputBind::State(acc))?;

    // rdpop d: read the accumulator.
    let mut g = DfGraph::new();
    let acc_in = g.input("acc", 16);
    g.output(acc_in);
    ext.instruction("rdpop", g)?
        .bind_input(InputBind::State(acc))?
        .bind_output(OutputBind::Gpr)?;

    Ok(ext.build()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ext = build_popcount_extension()?;

    // What did the TIE compiler derive?
    for inst in &ext {
        println!(
            "{:<8} latency {} cycle(s), uses GPR: {}, resources: {:?}",
            inst.name(),
            inst.latency(),
            inst.uses_gpr(),
            inst.resource_vector()
                .iter()
                .zip(Category::ALL)
                .filter(|(r, _)| **r > 0.0)
                .map(|(r, c)| format!("{c}={r:.2}"))
                .collect::<Vec<_>>()
        );
    }

    // A program counting the set bits of 64 words.
    let mut asm = Assembler::new();
    ext.register_mnemonics(&mut asm);
    let mut data = String::from(".word ");
    let words: Vec<u32> = (0..64u32).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
    data.push_str(
        &words
            .iter()
            .map(|w| format!("0x{w:x}"))
            .collect::<Vec<_>>()
            .join(", "),
    );
    let program = asm.assemble(&format!(
        ".data\nws: {data}\n.text\n\
         movi a2, ws\nmovi a3, 64\n\
         loop:\nl32i a4, 0(a2)\npopacc a4\naddi a2, a2, 4\naddi a3, a3, -1\nbnez a3, loop\n\
         rdpop a5\nhalt"
    ))?;

    let mut sim = Interp::new(&program, &ext, ProcConfig::default());
    let run = sim.run(1_000_000)?;
    let expected: u32 = words.iter().map(|w| w.count_ones()).sum();
    assert_eq!(sim.state().reg(Reg::new(5)), expected);
    println!(
        "\ncounted {expected} set bits in {} cycles",
        run.stats.total_cycles
    );

    // What does it cost? The reference estimator reports the per-block
    // energy of the extended processor, including the popcount datapath.
    let report = RtlEnergyEstimator::new().estimate(&program, &ext, ProcConfig::default())?;
    println!("\nreference energy report:\n{}", report.breakdown);
    println!(
        "\naverage power at 187 MHz: {:.1} mW",
        report.average_power_mw(187.0)
    );
    Ok(())
}
