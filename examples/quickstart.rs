//! Quickstart: characterize the extensible processor once, then estimate
//! application energy with nothing but instruction-set simulation.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use emx::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Step 1: build the energy macro-model (done once per base core).
    //
    // Every training case is one test program running on its own extended
    // processor; the characterizer runs the fast ISS for the independent
    // variables and the RTL-level reference estimator for the dependent
    // variable, then fits the 21 energy coefficients by least squares.
    println!("characterizing the emx base processor (this runs 40 test programs)...");
    let suite = emx::workloads::suite::full_training_suite();
    let cases = emx::workloads::suite::training_cases(&suite);
    let result = Characterizer::new(ProcConfig::default()).characterize(&cases)?;
    println!(
        "model fitted: R^2 = {:.5}, rms fitting error = {:.2}%\n",
        result.fit.r_squared(),
        result.fit.rms_percent_error()
    );

    // ---- Step 2: estimate an application — no synthesis, no RTL power run.
    //
    // Write a small program against a custom extension and ask the model
    // for its energy. The only work is instruction-set simulation plus a
    // 21-element dot product.
    let ext = emx::workloads::exts::mac16();
    let mut asm = Assembler::new();
    ext.register_mnemonics(&mut asm);
    let program = asm.assemble(
        r#"
        # Sum of squares 1..100 on the custom MAC unit.
        .data
        out: .space 4
        .text
            clracc
            movi    a2, 100
        loop:
            mac     a2, a2          # acc += a2*a2
            addi    a2, a2, -1
            bnez    a2, loop
            rdacc   a3
            movi    a4, out
            s32i    a3, 0(a4)
            halt
        "#,
    )?;

    let estimate = result
        .model
        .estimate(&program, &ext, ProcConfig::default())?;
    println!("sum-of-squares on the MAC extension:");
    println!("  cycles:           {}", estimate.stats.total_cycles);
    println!("  estimated energy: {}", estimate.energy);

    // Cross-check against the slow reference path (the thing the
    // macro-model lets a design loop skip).
    let reference = RtlEnergyEstimator::new().estimate(&program, &ext, ProcConfig::default())?;
    println!("  reference energy: {}", reference.total);
    println!(
        "  estimation error: {:+.1}%",
        estimate.energy.percent_error_vs(reference.total)
    );

    // And confirm the program computed the right answer: Σ k² for k=1..100.
    let mut sim = Interp::new(&program, &ext, ProcConfig::default());
    sim.run(1_000_000)?;
    let sum: u32 = (1..=100u32).map(|k| k * k).sum();
    assert_eq!(sim.state().mem.read_u32(program.data_base()), sum);
    println!("  result verified:  Σk² = {sum}");
    Ok(())
}
